"""Unidirectional NoC links with bandwidth, fault states, and corruption."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.noc.topology import Coord

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


class LinkState(enum.Enum):
    """Health of a link.

    UP        — normal operation.
    DOWN      — hard failure: packets entering the link are dropped.
    CORRUPTING — transient fault mode: packets traverse but arrive with
                 ``corrupted=True`` (their MACs will fail verification,
                 modelling bit errors caught by end-to-end checks).
    """

    UP = "up"
    DOWN = "down"
    CORRUPTING = "corrupting"


class Link:
    """One directed channel between adjacent routers.

    The serialization model is wormhole-like but accounted at packet
    granularity: a packet of ``n`` flits occupies the link for
    ``n * cycle_time`` after the head enters, plus a fixed ``latency``
    for traversal.  ``busy_until`` implements output contention.

    Links are the hottest objects in the interconnect (one ``reserve``
    per packet per hop), hence ``__slots__``.  Fault state must be
    driven through :class:`~repro.noc.network.NocNetwork`'s fault
    interface, which keeps the express-path bookkeeping consistent.
    """

    __slots__ = (
        "sim",
        "src",
        "dst",
        "latency",
        "cycle_time",
        "state",
        "busy_until",
        "packets_carried",
        "flits_carried",
    )

    def __init__(
        self,
        sim: "Simulator",
        src: Coord,
        dst: Coord,
        latency: float = 1.0,
        cycle_time: float = 1.0,
    ) -> None:
        if latency < 0 or cycle_time <= 0:
            raise ValueError("link latency must be >= 0 and cycle_time > 0")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.latency = latency
        self.cycle_time = cycle_time
        self.state = LinkState.UP
        self.busy_until = 0.0
        self.packets_carried = 0
        self.flits_carried = 0

    @property
    def key(self) -> tuple:
        """(src, dst) — the link's identity in the network's link map."""
        return (self.src, self.dst)

    def fail(self) -> None:
        """Hard-fail the link (packets are dropped on entry)."""
        self.state = LinkState.DOWN

    def degrade(self) -> None:
        """Put the link into corrupting mode."""
        self.state = LinkState.CORRUPTING

    def repair(self) -> None:
        """Restore the link to normal operation."""
        self.state = LinkState.UP

    def occupancy_delay(self, flits: int, now: float) -> float:
        """Queueing delay a packet of ``flits`` sees before entering now."""
        return max(0.0, self.busy_until - now)

    def transfer_time(self, flits: int) -> float:
        """Time from entering the link to fully arriving at the far router."""
        return self.latency + flits * self.cycle_time

    def reserve(self, flits: int, now: float) -> float:
        """Reserve the link for a packet; returns its arrival time at dst.

        The caller must have already checked the link is not DOWN.
        """
        start = self.busy_until
        if now > start:
            start = now
        # The link is occupied while flits serialize onto it; the fixed
        # traversal latency pipelines with the next packet.
        serialize = flits * self.cycle_time
        self.busy_until = start + serialize
        self.packets_carried += 1
        self.flits_carried += flits
        return start + serialize + self.latency

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Link {self.src}->{self.dst} {self.state.value}>"
