"""NoC routers: per-tile switching elements with fault states."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.noc.topology import Coord

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


class Router:
    """The switching element at one tile.

    Adds a fixed per-hop ``switch_latency`` (arbitration + crossbar) to
    every packet passing through, and can hard-fail — a failed router
    drops everything addressed through it, modelling a dead tile region.

    Routers sit on the per-hop fast path (one ``switch`` per packet per
    hop), hence ``__slots__``.  Fault state must be driven through
    :class:`~repro.noc.network.NocNetwork`'s fault interface.
    """

    __slots__ = ("sim", "coord", "switch_latency", "failed", "packets_switched")

    def __init__(self, sim: "Simulator", coord: Coord, switch_latency: float = 1.0) -> None:
        if switch_latency < 0:
            raise ValueError(f"switch latency must be >= 0, got {switch_latency}")
        self.sim = sim
        self.coord = coord
        self.switch_latency = switch_latency
        self.failed = False
        self.packets_switched = 0

    def fail(self) -> None:
        """Hard-fail the router."""
        self.failed = True

    def repair(self) -> None:
        """Restore the router."""
        self.failed = False

    def switch(self) -> float:
        """Account one packet through the crossbar; returns added latency."""
        self.packets_switched += 1
        return self.switch_latency

    def __repr__(self) -> str:  # pragma: no cover
        state = "failed" if self.failed else "ok"
        return f"<Router {self.coord} {state}>"
