"""Packets: routed messages with flit-level size accounting."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.noc.topology import Coord

FLIT_BYTES = 16
"""Flit payload width.  16 bytes/flit matches common 128-bit NoC channels."""


def flits_for(size_bytes: int) -> int:
    """Number of flits needed for a payload, minimum 1 (head flit)."""
    if size_bytes < 0:
        raise ValueError(f"negative payload size {size_bytes}")
    return max(1, math.ceil(size_bytes / FLIT_BYTES))


@dataclass
class Packet:
    """One NoC packet in flight.

    ``payload`` is opaque to the NoC; the SoC layer puts protocol messages
    here.  ``size_bytes`` drives serialization latency (flits cross a link
    one per cycle), and the trace fields let benches account for cost.
    """

    packet_id: int
    src: Coord
    dst: Coord
    payload: Any
    size_bytes: int
    injected_at: float
    corrupted: bool = False
    delivered_at: Optional[float] = None
    dropped: bool = False
    drop_reason: str = ""
    hops: int = 0
    path: List[Coord] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Cached: read once per hop on the forwarding path.
        self._flits = flits_for(self.size_bytes)

    @property
    def flits(self) -> int:
        """Packet length in flits (fixed at creation from ``size_bytes``)."""
        return self._flits

    @property
    def latency(self) -> Optional[float]:
        """End-to-end latency, or None if not (yet) delivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at

    @property
    def flit_hops(self) -> int:
        """flits x hops — the energy/bandwidth cost metric used by E2."""
        return self.flits * self.hops

    def __repr__(self) -> str:  # pragma: no cover
        state = "dropped" if self.dropped else ("delivered" if self.delivered_at else "in-flight")
        return f"<Packet #{self.packet_id} {self.src}->{self.dst} {self.flits}f {state}>"
