"""repro: fault- and intrusion-resilient manycore systems on a chip.

A from-scratch Python reproduction of Shoker, Esteves-Verissimo and Völp,
"The Path to Fault- and Intrusion-Resilient Manycore Systems on a Chip"
(DSN 2023) — the complete architecture the paper envisions, built as a
deterministic discrete-event simulation:

* a tile-based manycore SoC over a 2D-mesh NoC (:mod:`repro.soc`,
  :mod:`repro.noc`),
* an FPGA fabric with internal, partial, dynamic reconfiguration
  (:mod:`repro.fabric`),
* trusted hybrids — USIG, TrInc, A2M — with ECC/TMR/plain register
  storage and a gate-complexity model (:mod:`repro.hybrids`),
* a replication protocol suite — PBFT, MinBFT, CFT, passive
  (:mod:`repro.bft`),
* benign and malicious fault models — aging, bitflips, trojans,
  Byzantine strategies, APTs (:mod:`repro.faults`),
* statistical fault-injection campaigns with outcome classification
  and dependability reporting (:mod:`repro.faultspace`),
* consensual reconfiguration (:mod:`repro.recon`),
* the paper's resilience orchestration: replication, diversity,
  rejuvenation, adaptation, hybridization (:mod:`repro.core`), and
* a sharded service layer: many replica groups on disjoint tile
  regions of one chip, for linear throughput scaling
  (:mod:`repro.shard`), and
* a mesoscale workload engine: aggregated client populations (10^5–10^6
  modeled clients per object) with arrival-process demand, admission
  control, and load shedding (:mod:`repro.mesoscale`), and
* conservative parallel discrete-event simulation: per-shard-region
  domains in worker processes, synchronized at lookahead barriers,
  byte-identical to the serial kernel (:mod:`repro.pdes`), and
* evolutionary design-space exploration: an NSGA-II loop over the
  protocol/batching/sharding/placement/rejuvenation space with common
  random numbers, trial memoization, and Pareto decision support
  (:mod:`repro.evolve`).

Quickstart::

    from repro.core import ResilientSystem, OrchestratorConfig

    system = ResilientSystem(OrchestratorConfig(seed=1, protocol="minbft"))
    client = system.add_client("c0")
    system.start()
    system.run(500_000)
    print(system.summary())
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "bft",
    "core",
    "crypto",
    "evolve",
    "fabric",
    "faults",
    "faultspace",
    "hybrids",
    "mesoscale",
    "metrics",
    "noc",
    "pdes",
    "recon",
    "shard",
    "sim",
    "soc",
    "sos",
    "workloads",
]
