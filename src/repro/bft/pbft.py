"""PBFT (Castro & Liskov, OSDI'99): 3f+1 replicas, three phases.

The baseline active-replication protocol the paper cites (§II.A).  Normal
case: the primary orders a request with PRE-PREPARE; backups agree on the
(view, seq, digest) binding with PREPARE (quorum: 2f, plus the
pre-prepare); everyone confirms with COMMIT (quorum: 2f+1); execution is
in sequence order; the client accepts f+1 matching replies.

Implemented here with:

* real request digests (SHA-256 over the canonical serialization) — a
  tampering primary is caught by the digest check;
* transport-authenticated channels standing in for pairwise MACs, with
  MAC compute/verify *time* charged per the cost model (one MAC per
  recipient on multicasts — the message-cost asymmetry E2 measures);
* periodic checkpointing with log truncation at 2f+1 matching
  checkpoints;
* a view-change subprotocol: backups time-out on pending requests,
  broadcast VIEW-CHANGE, and the next primary installs NEW-VIEW with
  re-proposals of prepared-but-unexecuted operations;
* optional request batching + pipelined agreement
  (``PbftConfig.batching``, a :class:`~repro.bft.batching.BatchConfig`):
  the primary orders a whole batch under one digest and one MAC vector
  per phase, with a bounded in-flight window.  ``batch_size=1``
  reproduces the unbatched protocol event-for-event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.bft.batching import BatchAccumulator, BatchConfig, resolve_batching
from repro.bft.leases import LeaseConfig, LeaseManager, LeaseTable, resolve_leases
from repro.bft.messages import (
    Checkpoint,
    ClientReply,
    ClientRequest,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    Proposal,
    ViewChange,
    proposal_digest,
    proposal_keys,
    requests_of,
)
from repro.bft.replica import BaseReplica, GroupContext
from repro.crypto.mac import MAC_LENGTH
from repro.sim.timers import Timeout
from repro.soc.chip import is_corrupted


@dataclass
class PbftConfig:
    """Protocol knobs.

    ``batching`` enables request batching + a bounded in-flight window on
    the primary (see :mod:`repro.bft.batching`); None (the default) keeps
    the classic one-request-per-round behaviour, byte for byte.

    ``leases`` enables primary-granted read leases (see
    :mod:`repro.bft.leases`); None keeps the quorum-read behaviour,
    event for event.
    """

    checkpoint_interval: int = 64
    watermark_window: int = 256
    view_timeout: float = 40_000.0
    batching: Optional[BatchConfig] = None
    leases: Optional[LeaseConfig] = None


@dataclass
class _SlotState:
    """Per-(view, seq) agreement state."""

    pre_prepare: Optional[PrePrepare] = None
    prepares: Set[str] = field(default_factory=set)
    commits: Set[str] = field(default_factory=set)
    prepare_sent: bool = False
    commit_sent: bool = False
    committed: bool = False


def required_replicas(f: int) -> int:
    """PBFT needs 3f+1 replicas to tolerate f Byzantine faults."""
    return 3 * f + 1


class PbftReplica(BaseReplica):
    """One PBFT replica."""

    def __init__(
        self, name: str, group: GroupContext, config: Optional[PbftConfig] = None
    ) -> None:
        super().__init__(name, group)
        self.config = config or PbftConfig()
        expected = required_replicas(group.f)
        if group.n < expected:
            raise ValueError(f"PBFT with f={group.f} needs n>={expected}, got {group.n}")
        self._slots: Dict[Tuple[int, int], _SlotState] = {}
        self._next_seq = 0
        self._stable_seq = 0
        self._checkpoint_votes: Dict[Tuple[int, bytes], Set[str]] = {}
        self._pending_requests: Dict[Tuple[str, int], ClientRequest] = {}
        self._seen_digests: Dict[int, bytes] = {}  # seq -> digest once prepared
        self._view_change_votes: Dict[int, Dict[str, ViewChange]] = {}
        self._in_view_change = False
        self._view_timer = None  # created lazily (needs sim, i.e. placement)
        batching = resolve_batching(self.config.batching)
        if batching is not None:
            self.batcher = BatchAccumulator(self, batching, self._propose_proposal)
        leases = resolve_leases(self.config.leases)
        if leases is not None:
            self.lease_table = LeaseTable(self, leases)
            self.lease_manager = LeaseManager(self, leases)

    # ------------------------------------------------------------------
    # Quorums
    # ------------------------------------------------------------------
    @property
    def prepare_quorum(self) -> int:
        """Prepares needed (besides the pre-prepare): 2f."""
        return 2 * self.group.f

    @property
    def commit_quorum(self) -> int:
        """Commits needed: 2f+1."""
        return 2 * self.group.f + 1

    # ------------------------------------------------------------------
    # Cost-charged authenticated send
    # ------------------------------------------------------------------
    def _auth_multicast(self, message: Any, extra_bytes: int = 0) -> None:
        """Multicast with a MAC vector: charge one MAC per recipient, then
        send.  ``auth_size`` rides on the message for wire accounting."""
        recipients = self.other_members()
        delay = self.charge(self.costs.mac_compute * len(recipients))
        self.sim.schedule(delay, self._do_multicast, recipients, message)

    def _do_multicast(self, recipients, message) -> None:
        if self.state.value == "crashed":
            return
        size = message.wire_size() + MAC_LENGTH * len(recipients)
        self.broadcast(recipients, message, size)

    # ------------------------------------------------------------------
    # Timer plumbing
    # ------------------------------------------------------------------
    def _ensure_timer(self) -> Timeout:
        if self._view_timer is None:
            self._view_timer = Timeout(self.sim, self.config.view_timeout, self._on_view_timeout)
        return self._view_timer

    def _note_pending(self, request: ClientRequest) -> None:
        if request.key() in self._pending_requests or self.already_executed(request):
            return
        self._pending_requests[request.key()] = request
        timer = self._ensure_timer()
        if not timer.armed:
            timer.start()

    def _note_executed(self, request: ClientRequest) -> None:
        self._pending_requests.pop(request.key(), None)
        timer = self._ensure_timer()
        if self._pending_requests:
            timer.start()  # progress: give remaining requests a fresh window
        else:
            timer.cancel()

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:
        if is_corrupted(message):
            self.group.metrics.counter(f"{self.group.group_id}.corrupt_dropped").inc()
            return
        if self.handle_common(sender, message):
            return
        if isinstance(message, ClientRequest):
            self._handle_request(sender, message)
            return
        # All inter-replica traffic pays MAC verification first.
        if sender not in self.group.members:
            return
        delay = self.charge(self.costs.mac_verify)
        self.sim.schedule(delay, self._dispatch_verified, sender, message)

    def _dispatch_verified(self, sender: str, message: Any) -> None:
        if self.state.value == "crashed":
            return
        if isinstance(message, PrePrepare):
            self._handle_pre_prepare(sender, message)
        elif isinstance(message, Prepare):
            self._handle_prepare(sender, message)
        elif isinstance(message, Commit):
            self._handle_commit(sender, message)
        elif isinstance(message, Checkpoint):
            self._handle_checkpoint(sender, message)
        elif isinstance(message, ViewChange):
            self._handle_view_change(sender, message)
        elif isinstance(message, NewView):
            self._handle_new_view(sender, message)

    # ------------------------------------------------------------------
    # Normal case
    # ------------------------------------------------------------------
    def _handle_request(self, sender: str, request: ClientRequest) -> None:
        if self.already_executed(request):
            self.resend_cached_reply(request)
            return
        if self._in_view_change:
            self._note_pending(request)
            return
        if self.is_primary:
            if self.lease_manager is not None:
                self._note_pending(request)  # parked writes survive view changes
                if self.lease_manager.intercept(request):
                    return
            self._admit_ordered(request)
        else:
            # Forward to the primary and start watching for progress.
            self.send(self.primary, request, request.wire_size())
            self._note_pending(request)

    def _admit_ordered(self, request: ClientRequest) -> None:
        if self.batcher is not None:
            if self._already_ordering(request) or request.key() in self.batcher.pending_keys:
                return
            self.batcher.add(request)
        else:
            self._propose(request)

    def _already_ordering(self, request: ClientRequest) -> bool:
        return any(
            slot.pre_prepare is not None
            and not slot.committed
            and request.key() in proposal_keys(slot.pre_prepare.request)
            for slot in self._slots.values()
        )

    def _propose(self, request: ClientRequest) -> None:
        if self._already_ordering(request):
            return
        self._propose_proposal(request)

    def _propose_proposal(self, proposal: Proposal) -> bool:
        """Order one proposal (a bare request, or a RequestBatch)."""
        if self._in_view_change or not self.is_primary:
            return False  # demoted while the batch was queued
        if self._next_seq - self._stable_seq >= self.config.watermark_window:
            return False  # window full; clients will retry
        self._next_seq += 1
        seq = self._next_seq
        dig = proposal_digest(proposal)
        message = PrePrepare(self.view, seq, dig, proposal)
        slot = self._slot(self.view, seq)
        slot.pre_prepare = message
        for request in requests_of(proposal):
            self._note_pending(request)
        self._auth_multicast(message)
        # The primary prepares implicitly via its pre-prepare.
        self._maybe_prepared(self.view, seq)
        return True

    def _slot(self, view: int, seq: int) -> _SlotState:
        return self._slots.setdefault((view, seq), _SlotState())

    def _handle_pre_prepare(self, sender: str, message: PrePrepare) -> None:
        if message.view != self.view or self._in_view_change:
            return
        if sender != self.primary:
            return  # only the view's primary may order
        if message.seq <= self._stable_seq:
            return
        if message.seq > self._stable_seq + self.config.watermark_window:
            return
        if proposal_digest(message.request) != message.digest:
            self.group.metrics.counter(f"{self.group.group_id}.bad_digest").inc()
            return
        slot = self._slot(message.view, message.seq)
        if slot.pre_prepare is not None and slot.pre_prepare.digest != message.digest:
            return  # equivocation: keep the first binding
        slot.pre_prepare = message
        for request in requests_of(message.request):
            self._note_pending(request)
        if not slot.prepare_sent:
            slot.prepare_sent = True
            prepare = Prepare(message.view, message.seq, message.digest, self.name)
            slot.prepares.add(self.name)
            self._auth_multicast(prepare)
        self._maybe_prepared(message.view, message.seq)

    def _handle_prepare(self, sender: str, message: Prepare) -> None:
        if message.view != self.view or self._in_view_change:
            return
        if sender != message.replica:
            return
        slot = self._slot(message.view, message.seq)
        if slot.pre_prepare is not None and slot.pre_prepare.digest != message.digest:
            return
        slot.prepares.add(sender)
        self._maybe_prepared(message.view, message.seq)

    def _maybe_prepared(self, view: int, seq: int) -> None:
        slot = self._slot(view, seq)
        if slot.pre_prepare is None or slot.commit_sent:
            return
        # The primary's pre-prepare stands in for its prepare.
        votes = set(slot.prepares)
        votes.add(self.group.primary_of(view))
        if len(votes) >= self.prepare_quorum + 1:  # 2f distinct + primary
            slot.commit_sent = True
            self._seen_digests[seq] = slot.pre_prepare.digest
            commit = Commit(view, seq, slot.pre_prepare.digest, self.name)
            slot.commits.add(self.name)
            self._auth_multicast(commit)
            self._maybe_committed(view, seq)

    def _handle_commit(self, sender: str, message: Commit) -> None:
        if message.view != self.view or self._in_view_change:
            return
        if sender != message.replica:
            return
        slot = self._slot(message.view, message.seq)
        if slot.pre_prepare is not None and slot.pre_prepare.digest != message.digest:
            return
        slot.commits.add(sender)
        self._maybe_committed(message.view, message.seq)

    def _maybe_committed(self, view: int, seq: int) -> None:
        slot = self._slot(view, seq)
        if slot.committed or slot.pre_prepare is None or not slot.commit_sent:
            return
        if len(slot.commits) >= self.commit_quorum:
            slot.committed = True
            proposal = slot.pre_prepare.request
            self.commit_operation(seq, slot.pre_prepare.digest, proposal)
            for request in requests_of(proposal):
                self._note_executed(request)
            if seq % self.config.checkpoint_interval == 0:
                self._emit_checkpoint(seq)

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def _emit_checkpoint(self, seq: int) -> None:
        message = Checkpoint(seq, self.app.state_digest(), self.name)
        self._record_checkpoint_vote(self.name, message)
        self._auth_multicast(message)

    def _handle_checkpoint(self, sender: str, message: Checkpoint) -> None:
        if sender != message.replica:
            return
        self._record_checkpoint_vote(sender, message)

    def _record_checkpoint_vote(self, sender: str, message: Checkpoint) -> None:
        key = (message.seq, message.state_digest)
        votes = self._checkpoint_votes.setdefault(key, set())
        votes.add(sender)
        if len(votes) >= self.commit_quorum and message.seq > self._stable_seq:
            self._stable_seq = message.seq
            self._truncate_log(message.seq)

    def _truncate_log(self, stable_seq: int) -> None:
        for (view, seq) in [k for k in self._slots if k[1] <= stable_seq]:
            del self._slots[(view, seq)]
        for key in [k for k in self._checkpoint_votes if k[0] < stable_seq]:
            del self._checkpoint_votes[key]

    # ------------------------------------------------------------------
    # View change
    # ------------------------------------------------------------------
    def _on_view_timeout(self) -> None:
        if not self._pending_requests:
            return
        self._start_view_change(self.view + 1)

    def _start_view_change(self, new_view: int) -> None:
        if new_view <= self.view and self._in_view_change:
            return
        self._in_view_change = True
        prepared = tuple(
            (seq, slot.pre_prepare.digest)
            for (view, seq), slot in sorted(self._slots.items())
            if slot.pre_prepare is not None
            and slot.commit_sent
            and not slot.committed
        )
        message = ViewChange(new_view, self.last_executed, prepared, self.name)
        self._record_view_change_vote(self.name, message)
        self._auth_multicast(message)
        # If this view change stalls too, escalate further.
        timer = self._ensure_timer()
        timer.start()
        self.group.metrics.counter(f"{self.group.group_id}.view_changes").inc()

    def _handle_view_change(self, sender: str, message: ViewChange) -> None:
        if sender != message.replica or message.new_view <= self.view:
            return
        self._record_view_change_vote(sender, message)

    def _record_view_change_vote(self, sender: str, message: ViewChange) -> None:
        votes = self._view_change_votes.setdefault(message.new_view, {})
        votes[sender] = message
        # A backup that sees f+1 view changes joins (Castro-Liskov rule).
        if (
            len(votes) >= self.group.f + 1
            and not self._in_view_change
            and message.new_view > self.view
        ):
            self._start_view_change(message.new_view)
        if (
            len(votes) >= self.commit_quorum
            and self.group.primary_of(message.new_view) == self.name
            and message.new_view > self.view
        ):
            self._install_view(message.new_view, votes)

    def _install_view(self, new_view: int, votes: Dict[str, ViewChange]) -> None:
        # Gather re-proposals for prepared-but-unexecuted operations we
        # still hold the request body for.
        reproposals = []
        seen: Set[int] = set()
        for vc in votes.values():
            for seq, dig in vc.prepared:
                if seq in seen or seq <= self.last_executed:
                    continue
                body = self._find_request(dig)
                if body is not None:
                    seen.add(seq)
                    reproposals.append(PrePrepare(new_view, seq, dig, body))
        message = NewView(new_view, tuple(sorted(reproposals, key=lambda p: p.seq)), self.name)
        self._enter_view(new_view)
        if seen:
            self._next_seq = max(self._next_seq, max(seen))
        self._auth_multicast(message)
        for reproposal in message.reproposals:
            slot = self._slot(new_view, reproposal.seq)
            slot.pre_prepare = reproposal
            self._maybe_prepared(new_view, reproposal.seq)
        self._repropose_pending()

    def _handle_new_view(self, sender: str, message: NewView) -> None:
        if message.view <= self.view:
            return
        if sender != self.group.primary_of(message.view):
            return
        self._enter_view(message.view)
        for reproposal in message.reproposals:
            self._handle_pre_prepare(sender, reproposal)
        # Re-introduce still-pending client requests into the new view.
        for request in list(self._pending_requests.values()):
            self.send(self.primary, request, request.wire_size())

    def _enter_view(self, new_view: int) -> None:
        self.view = new_view
        self._in_view_change = False
        self._next_seq = max(self._next_seq, self.last_executed)
        if self.batcher is not None:
            # Window accounting restarts in the new view; pending requests
            # re-enter via _repropose_pending / client retransmission.
            self.batcher.reset()
        if self.lease_manager is not None:
            # Old-era grants and revocations are void; quiesce writes for
            # one lease duration so leftover holders drain safely.
            self.lease_manager.on_view_entered(new_view)
        if self.lease_table is not None:
            self.lease_table.clear()  # grants are view-tagged anyway; hygiene
        for stale in [v for v in self._view_change_votes if v <= new_view]:
            del self._view_change_votes[stale]
        timer = self._ensure_timer()
        if self._pending_requests:
            timer.start()
        else:
            timer.cancel()

    def _repropose_pending(self) -> None:
        if not self.is_primary:
            return
        for request in list(self._pending_requests.values()):
            if self.already_executed(request):
                continue
            if self.lease_manager is not None and self.lease_manager.intercept(request):
                continue  # held by the new-view quiesce; released later
            self._admit_ordered(request)
        if self.batcher is not None:
            self.batcher.flush()

    def _find_request(self, dig: bytes) -> Optional[Proposal]:
        for slot in self._slots.values():
            if slot.pre_prepare is not None and slot.pre_prepare.digest == dig:
                return slot.pre_prepare.request
        return None

    # ------------------------------------------------------------------
    def on_state_imported(self) -> None:
        self._next_seq = max(self._next_seq, self.last_executed)
        # Imported state is as good as a stable checkpoint: anchor the
        # watermark window there or the window check rejects every seq.
        self._stable_seq = max(self._stable_seq, self.last_executed)

    def reset_protocol_state(self) -> None:
        self._slots.clear()
        self._checkpoint_votes.clear()
        self._pending_requests.clear()
        self._view_change_votes.clear()
        self._in_view_change = False
        self._next_seq = max(self._next_seq, self.last_executed)
        if self._view_timer is not None:
            self._view_timer.cancel()
