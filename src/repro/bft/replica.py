"""Common replica machinery shared by all protocol families."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bft.app import StateMachine
from repro.bft.messages import (
    ClientReply,
    ClientRequest,
    LeaseGrant,
    LeaseRevoke,
    LeaseRevokeAck,
    Proposal,
    ReadNack,
    StateRequest,
    StateResponse,
    requests_of,
)
from repro.bft.safety import SafetyRecorder
from repro.crypto.mac import digest as payload_digest
from repro.crypto.keys import KeyStore
from repro.metrics import MetricsRegistry
from repro.soc.node import Node, NodeState


class ExecutionLedger:
    """Bounded request-dedup state: per-client high-watermark + window.

    The old unbounded ``{(client, rid): True}`` dict grew one entry per
    executed request forever.  Client rids are monotone, so a per-client
    **high-watermark** plus a small **out-of-order window** captures the
    same ``already_executed`` answers in O(clients · window) memory:

    * rid above the watermark       → not executed yet;
    * rid inside the recent window  → executed iff recorded there;
    * rid at/below watermark−window → an ancient replay, reported executed
      (a client never advances its rid past an incomplete request by more
      than its outstanding window, so nothing that old can still be live).

    The window must exceed the largest client ``max_outstanding`` plus
    re-ordering slack; the default of 256 dwarfs any configured pipeline.
    """

    DEFAULT_WINDOW = 256

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"ledger window must be >= 1, got {window}")
        self.window = window
        self._high: Dict[str, int] = {}
        self._recent: Dict[str, set] = {}

    def contains(self, client: str, rid: int) -> bool:
        """True if (client, rid) was executed (or is an ancient replay)."""
        high = self._high.get(client)
        if high is None or rid > high:
            return False
        if rid <= high - self.window:
            return True
        return rid in self._recent[client]

    def add(self, client: str, rid: int) -> None:
        """Record an execution.  Amortized O(1): pruning is deferred until
        the recent set doubles past the window."""
        recent = self._recent.setdefault(client, set())
        high = self._high.get(client)
        if high is None or rid > high:
            self._high[client] = rid
            high = rid
        recent.add(rid)
        if len(recent) > 2 * self.window:
            floor = high - self.window
            self._recent[client] = {r for r in recent if r > floor}

    def export(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot for state transfer: fully pruned, deterministic."""
        out: Dict[str, Dict[str, Any]] = {}
        for client, high in self._high.items():
            floor = high - self.window
            recent = sorted(r for r in self._recent.get(client, ()) if r > floor)
            out[client] = {"high": high, "recent": recent}
        return out

    @classmethod
    def restore(cls, data: Dict[str, Dict[str, Any]], window: int = DEFAULT_WINDOW) -> "ExecutionLedger":
        """Rebuild from :meth:`export` output."""
        ledger = cls(window)
        for client, entry in data.items():
            ledger._high[client] = entry["high"]
            ledger._recent[client] = set(entry["recent"])
        return ledger

    def __len__(self) -> int:
        """Tracked clients (state-transfer cost accounting)."""
        return len(self._high)


@dataclass
class GroupContext:
    """Everything a replica needs to know about its group.

    Shared (by reference) among the group's replicas; protocols read the
    ordered member list, the fault bound f, and the shared observers.
    """

    group_id: str
    members: List[str]
    f: int
    app_factory: Callable[[], StateMachine]
    keystore: KeyStore
    safety: SafetyRecorder
    metrics: MetricsRegistry

    def __post_init__(self) -> None:
        if self.f < 0:
            raise ValueError("f must be non-negative")
        if len(set(self.members)) != len(self.members):
            raise ValueError("duplicate member names")

    @property
    def n(self) -> int:
        """Group size."""
        return len(self.members)

    def primary_of(self, view: int) -> str:
        """Round-robin primary for a view."""
        return self.members[view % self.n]


class BaseReplica(Node):
    """Base class: in-order execution, reply cache, safety reporting.

    Subclasses implement the ordering protocol and call
    :meth:`commit_operation` once an operation is committed at a sequence
    number; this class handles ordered execution, deduplication, client
    replies, and the safety recorder.
    """

    # Subclasses override: how many matching replies a client must collect.
    reply_quorum = 1

    # Cached replies kept per client; must cover the client's outstanding
    # pipeline so retransmits of any incomplete rid can be answered.
    REPLY_CACHE_SIZE = 64

    def __init__(self, name: str, group: GroupContext) -> None:
        super().__init__(name)
        self.group = group
        self.app: StateMachine = group.app_factory()
        self.view = 0
        self.last_executed = 0
        self._pending_execution: Dict[int, Tuple[bytes, Proposal]] = {}
        self._last_reply: Dict[str, Dict[int, ClientReply]] = {}
        self._executed = ExecutionLedger()
        self._state_offers: Dict[Tuple[int, bytes], Dict[str, Any]] = {}
        self._sync_current_votes: set = set()
        self.syncing = False
        self.commits = 0
        self.state_syncs = 0
        # Installed by protocols that enable batching (primary side).
        self.batcher = None
        # Installed by protocols that enable leases (repro.bft.leases):
        # every replica gets both — any member can hold leases or become
        # primary.  None when leases are off (exactness contract).
        self.lease_table = None
        self.lease_manager = None

    # ------------------------------------------------------------------
    @property
    def primary(self) -> str:
        """The current view's primary."""
        return self.group.primary_of(self.view)

    @property
    def is_primary(self) -> bool:
        """True if this replica leads the current view."""
        return self.primary == self.name

    def other_members(self) -> List[str]:
        """All group members except self."""
        return [m for m in self.group.members if m != self.name]

    def start(self) -> None:
        """Begin background activity once placed on the chip.

        Subclasses with their own timers call ``super().start()`` so the
        lease renewal cadence (when leases are enabled) runs everywhere.
        """
        if self.lease_manager is not None:
            self.lease_manager.start()

    def _admit_ordered(self, request: ClientRequest) -> None:
        """Primary admission funnel: batch-or-propose one request.

        Protocols route their primary-side request handling through this
        so the lease manager can park conflicting writes and re-admit
        them once the revocation completes.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Execution pipeline
    # ------------------------------------------------------------------
    def commit_operation(self, seq: int, digest: bytes, proposal: Proposal) -> None:
        """Protocol callback: ``proposal`` is committed at ``seq``.

        ``proposal`` is a bare request or a :class:`RequestBatch`; a
        committed batch executes its k requests in order under the one
        sequence number.  Executes in seq order; out-of-order commits are
        buffered until the gap closes.  Duplicate commits for an executed
        seq are ignored.
        """
        if seq <= self.last_executed:
            return
        self._pending_execution[seq] = (digest, proposal)
        while self.last_executed + 1 in self._pending_execution:
            next_seq = self.last_executed + 1
            pending_digest, pending_proposal = self._pending_execution.pop(next_seq)
            self._execute(next_seq, pending_digest, pending_proposal)
        if not self.syncing and len(self._pending_execution) >= 4:
            # A real execution gap (not mere reordering): an operation we
            # never saw committed below us.  Catch up by state transfer.
            self.request_state_sync()

    def _execute(self, seq: int, digest: bytes, proposal: Proposal) -> None:
        self.group.safety.record_commit(self.name, seq, digest, self.is_correct)
        self.commits += 1
        self.last_executed = seq
        requests = requests_of(proposal)
        self.group.metrics.counter(f"{self.group.group_id}.committed_ops").inc(
            len(requests)
        )
        for request in requests:
            self._apply_request(request)
        if self.batcher is not None:
            self.batcher.on_committed()
        if self.lease_manager is not None:
            self.lease_manager.on_committed()

    def _apply_request(self, request: ClientRequest) -> None:
        if self._executed.contains(*request.key()):
            return  # replayed request re-ordered at a later seq: no-op
        self._executed.add(*request.key())
        # Apply to the app state *now* so snapshots taken at any instant
        # are consistent with last_executed; only the reply is delayed by
        # the execution cost.
        result = self.app.execute(request.op)
        reply = ClientReply(self.name, request.client, request.rid, result, self.view)
        self._cache_reply(reply)
        self.group.metrics.counter(f"{self.group.group_id}.executions").inc()
        delay = self.charge(self.costs.execute_request)
        self.sim.schedule(delay, self._send_reply, reply)

    def _cache_reply(self, reply: ClientReply) -> None:
        cache = self._last_reply.setdefault(reply.client, {})
        cache[reply.rid] = reply
        while len(cache) > self.REPLY_CACHE_SIZE:
            del cache[min(cache)]

    def _send_reply(self, reply: ClientReply) -> None:
        if self.state.value == "crashed" or self.chip is None:
            return
        if self.chip.has_node(reply.client) or self.chip.off_chip_handler is not None:
            # The client may live on another chip (repro.sos tunnelling).
            self.send(reply.client, reply, reply.wire_size())

    def resend_cached_reply(self, request: ClientRequest) -> bool:
        """Resend the cached reply for a retransmitted, executed request."""
        cached = self._last_reply.get(request.client, {}).get(request.rid)
        if cached is not None:
            self.send(request.client, cached, cached.wire_size())
            return True
        return False

    def already_executed(self, request: ClientRequest) -> bool:
        """True if the request was executed (dedup check)."""
        return self._executed.contains(*request.key())

    # ------------------------------------------------------------------
    # State transfer (rejuvenation / protocol switch)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Snapshot for state transfer to a recovering/switching replica."""
        return {
            "snapshot": self.app.snapshot(),
            "last_executed": self.last_executed,
            "executed_requests": self._executed.export(),
            "last_reply": {c: dict(replies) for c, replies in self._last_reply.items()},
            "view": self.view,
            "protocol_tag": type(self).__name__,
            "protocol_extra": self.export_protocol_state(),
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        """Adopt a transferred snapshot (the inverse of export_state).

        Protocol-internal queues are *kept* (messages that raced the
        transfer stay valid); subclasses re-align their counters in
        :meth:`on_state_imported`, and same-family stream positions
        transfer through :meth:`import_protocol_state`.
        """
        self.app.restore(state["snapshot"])
        self.last_executed = state["last_executed"]
        self._executed = ExecutionLedger.restore(
            state["executed_requests"], window=self._executed.window
        )
        self._last_reply = {c: dict(replies) for c, replies in state["last_reply"].items()}
        self.view = max(self.view, state["view"])
        self._pending_execution = {
            s: v for s, v in self._pending_execution.items() if s > self.last_executed
        }
        self.group.safety.reset_replica(self.name, self.last_executed)
        if self.batcher is not None:
            # In-flight accounting is stale relative to the adopted state;
            # pending requests survive in the protocol's pending map and
            # re-enter through re-batching.
            self.batcher.reset()
        if self.lease_manager is not None:
            # The adopted state may carry a newer view: treat it as an era
            # change — grants from before the transfer are untrustworthy.
            self.lease_manager.on_view_entered(self.view)
        if self.lease_table is not None:
            self.lease_table.clear()
        if state.get("protocol_tag") == type(self).__name__:
            self.import_protocol_state(state.get("protocol_extra", {}))
        self.on_state_imported()

    def export_protocol_state(self) -> Dict[str, Any]:
        """Subclass hook: protocol stream positions worth transferring."""
        return {}

    def import_protocol_state(self, extra: Dict[str, Any]) -> None:
        """Subclass hook: adopt same-family stream positions."""

    def on_state_imported(self) -> None:
        """Subclass hook: re-align internal counters with last_executed."""

    def shutdown(self) -> None:
        """Permanently deactivate this replica *instance*.

        Called when the group rebuilds its replicas (protocol switch,
        scale-in): the old object must stop acting — a live "zombie"
        holding the same name would keep firing timers and committing
        stale operations attributed to its successor.
        """
        self.state = NodeState.CRASHED
        self.syncing = False
        self.reset_protocol_state()
        if self.batcher is not None:
            self.batcher.reset()
        if self.lease_manager is not None:
            self.lease_manager.stop()
        if self.lease_table is not None:
            self.lease_table.clear()

    def on_recover(self) -> None:
        """After rejuvenation the replica rejoins with its durable state.

        We model reliable local persistence of executed state (NVM or
        state transfer from peers); protocol-internal message state is
        subclass responsibility via :meth:`reset_protocol_state`.  The
        replica also asks peers for anything it missed while down.
        """
        self._pending_execution.clear()
        self.group.safety.reset_replica(self.name, self.last_executed)
        self.reset_protocol_state()
        if self.batcher is not None:
            self.batcher.reset()
        if self.lease_manager is not None:
            self.lease_manager.reset()
        if self.lease_table is not None:
            # A rejuvenated replica must not serve on pre-crash leases: it
            # waits for a fresh grant from the current primary.
            self.lease_table.clear()
        if self.chip is not None:
            self.sim.call_soon(self.request_state_sync)

    def reset_protocol_state(self) -> None:
        """Subclass hook: drop in-flight protocol bookkeeping."""

    # ------------------------------------------------------------------
    # State synchronisation (catch-up after downtime / view change)
    # ------------------------------------------------------------------
    @property
    def state_sync_quorum(self) -> int:
        """Matching state offers needed before adopting one: f+1 (BFT);
        crash-only protocols override to 1."""
        return self.group.f + 1

    def request_state_sync(self, retry_after: float = 20_000.0) -> None:
        """Ask all peers for state newer than what we executed.

        While ``syncing`` is True, subclasses must not assign new global
        sequence numbers (MinBFT gates its execution drain on it).  The
        flag clears when either a newer state is adopted or a quorum of
        peers confirms we are current; unresolved syncs retry.
        """
        if self.state.value == "crashed":
            return
        self.syncing = True
        self._state_offers.clear()
        self._sync_current_votes.clear()
        message = StateRequest(self.name, self.last_executed)
        self.broadcast(self.other_members(), message, message.wire_size())
        if retry_after > 0:
            self.sim.schedule(retry_after, self._retry_sync, retry_after)

    def _retry_sync(self, retry_after: float) -> None:
        if self.syncing and self.state.value != "crashed":
            self.request_state_sync(retry_after)

    def handle_common(self, sender: str, message: Any) -> bool:
        """Protocols call this first in ``on_message``; True = consumed."""
        if isinstance(message, StateRequest):
            self._handle_state_request(sender, message)
            return True
        if isinstance(message, StateResponse):
            self._handle_state_response(sender, message)
            return True
        if isinstance(message, ClientRequest) and message.read_only:
            if message.lease_read:
                self._serve_lease_read(sender, message)
            else:
                self._serve_read(sender, message)
            return True
        if isinstance(message, LeaseGrant):
            if self.lease_table is not None:
                self.lease_table.on_grant(sender, message)
            return True
        if isinstance(message, LeaseRevoke):
            if self.lease_table is not None:
                self.lease_table.on_revoke(sender, message)
            return True
        if isinstance(message, LeaseRevokeAck):
            if self.lease_manager is not None:
                self.lease_manager.on_revoke_ack(sender, message)
            return True
        return False

    def _serve_read(self, sender: str, request: ClientRequest) -> None:
        """Read-only fast path: answer from current state, no ordering.

        Any replica (primary or backup) serves reads.  The client needs
        f+1 *matching* replies, so a lone stale or Byzantine replica
        cannot make up a value — at worst mismatching replies push the
        client onto the ordered path.
        """
        if self.syncing:
            return  # our state may be behind; let up-to-date peers answer
        try:
            result = self.app.read(request.op)
        except ValueError:
            return  # not actually read-only: only the ordered path may run it
        self.group.metrics.counter(f"{self.group.group_id}.fast_reads").inc()
        reply = ClientReply(self.name, request.client, request.rid, result, self.view)
        if self.chip is not None and (
            self.chip.has_node(request.client) or self.chip.off_chip_handler is not None
        ):
            self.send(request.client, reply, reply.wire_size())

    def _serve_lease_read(self, sender: str, request: ClientRequest) -> None:
        """Leased read: answer alone from local committed state, one hop.

        Serveable iff a valid lease covers every key of the op — either a
        grant from the current view's primary (backup side), or the
        primary's own commit-evidence-backed self lease.  Anything else
        gets a :class:`ReadNack`, pushing the client onto the f+1 quorum
        path (same rid, no ordering traffic either way).
        """
        gid = self.group.group_id
        result: Any = None
        serveable = not self.syncing and (
            (self.lease_table is not None and self.lease_table.covers(request.op))
            or (
                self.is_primary
                and self.lease_manager is not None
                and self.lease_manager.holds_self_lease
            )
        )
        if serveable:
            try:
                result = self.app.read(request.op)
            except ValueError:
                serveable = False  # not actually read-only: refuse
        reachable = self.chip is not None and (
            self.chip.has_node(request.client) or self.chip.off_chip_handler is not None
        )
        if serveable:
            self.group.metrics.counter(f"{gid}.reads.local").inc()
            reply = ClientReply(
                self.name, request.client, request.rid, result, self.view, leased=True
            )
            if reachable:
                self.send(request.client, reply, reply.wire_size())
        else:
            self.group.metrics.counter(f"{gid}.reads.quorum_fallback").inc()
            nack = ReadNack(self.name, request.client, request.rid)
            if reachable:
                self.send(request.client, nack, nack.wire_size())

    def _handle_state_request(self, sender: str, message: StateRequest) -> None:
        if sender != message.replica or sender not in self.group.members:
            return
        if self.last_executed <= message.have_seq:
            # "You are current": lets the requester resolve its sync even
            # when nothing was missed.
            response = StateResponse(self.name, self.last_executed, b"", None)
            self.send(sender, response, response.wire_size())
            return
        state = self.export_state()
        response = StateResponse(
            self.name, self.last_executed, self.app.state_digest(), state
        )
        self.send(sender, response, response.wire_size())

    def _handle_state_response(self, sender: str, message: StateResponse) -> None:
        if sender != message.replica or sender not in self.group.members:
            return
        if message.last_executed <= self.last_executed:
            self._sync_current_votes.add(sender)
            if self.syncing and len(self._sync_current_votes) >= self.state_sync_quorum:
                self.syncing = False
                self.on_state_synced()
            return
        key = (message.last_executed, message.state_digest)
        offers = self._state_offers.setdefault(key, {})
        offers[sender] = message.state
        if len(offers) >= self.state_sync_quorum:
            # Adopt the first copy whose snapshot actually matches the
            # agreed digest — a Byzantine responder can echo the agreed
            # key but cannot craft a poisoned snapshot with that digest.
            state = self._first_valid_offer(offers, message.state_digest)
            if state is None:
                return
            self._state_offers.clear()
            self.state_syncs += 1
            self.import_state(state)
            self.syncing = False
            self.on_state_synced()

    def _first_valid_offer(self, offers: Dict[str, Any], digest: bytes) -> Optional[Any]:
        probe = self.group.app_factory()
        for sender in sorted(offers):
            state = offers[sender]
            try:
                probe.restore(state["snapshot"])
            except (KeyError, TypeError, ValueError):
                continue
            if probe.state_digest() == digest:
                return state
        return None

    def on_state_synced(self) -> None:
        """Subclass hook: called after adopting a transferred state."""

    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:  # pragma: no cover
        raise NotImplementedError
