"""Protocol message types for all four replication families.

Messages are frozen dataclasses (so adversarial tampering must go through
``dataclasses.replace``, producing a *new* object — no aliasing surprises)
with a ``wire_size()`` that feeds the NoC's flit accounting.  Sizes follow
the usual BFT accounting: 8-byte ids/sequence numbers, 32-byte digests,
16-byte MACs, plus the opaque operation payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Tuple

from repro.crypto.mac import digest as _digest
from repro.hybrids.usig import UI

DIGEST_BYTES = 32
MAC_BYTES = 16
HEADER_BYTES = 16  # type tag, view, flags


def _op_size(op: Any) -> int:
    """Approximate serialized size of an opaque operation payload."""
    if isinstance(op, bytes):
        return len(op)
    if isinstance(op, str):
        return len(op.encode("utf-8"))
    if isinstance(op, (tuple, list)):
        return sum(_op_size(item) for item in op) + 4
    if isinstance(op, dict):
        return sum(_op_size(k) + _op_size(v) for k, v in op.items()) + 4
    return 8  # ints, floats, None, bools


# ----------------------------------------------------------------------
# Client interaction (shared by every family)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClientRequest:
    """A client operation: (client, rid) is globally unique and dedupes
    retransmissions.

    ``read_only`` requests take the fast path: replicas answer from their
    current state without ordering; the client needs f+1 *matching*
    replies (sequentially-consistent reads — at least one reply is from a
    correct replica, so the value was genuinely committed).  Mismatching
    replies (a write raced the read) make the client fall back to the
    ordered path.

    ``lease_read`` marks the *leased* variant of the fast path: the
    client sends the read to a single replica it believes holds a valid
    lease on the key's range, and accepts that one reply (tagged
    ``leased``) as the answer.  A replica without a covering lease
    answers :class:`ReadNack`, pushing the client onto the f+1 quorum
    read, which in turn falls back to the ordered path on timeout.
    """

    client: str
    rid: int
    op: Any
    read_only: bool = False
    lease_read: bool = False

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + _op_size(self.op) + MAC_BYTES

    def key(self) -> Tuple[str, int]:
        """The dedup key."""
        return (self.client, self.rid)


@dataclass(frozen=True)
class ClientReply:
    """A replica's reply; clients wait for a quorum of matching replies.

    ``leased`` tags a reply served from a valid read lease: the client
    accepts it alone (quorum of one), because lease safety — writes to
    the range are held at the primary until the lease is revoked or
    expires — substitutes for the vote quorum.
    """

    replica: str
    client: str
    rid: int
    result: Any
    view: int
    leased: bool = False

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + _op_size(self.result) + MAC_BYTES

    def match_key(self) -> Tuple[int, str]:
        """Two replies 'match' when rid and result agree."""
        return (self.rid, repr(self.result))


@dataclass(frozen=True)
class RequestBatch:
    """An ordered bundle of client requests agreed on as *one* unit.

    Batching amortizes the per-round protocol cost (one three-phase
    exchange, one MAC vector, one USIG certificate) over ``len(requests)``
    operations: the primary closes a batch by size, byte, or time bound
    (see :class:`repro.bft.batching.BatchConfig`) and proposes it under a
    single sequence number.  A committed batch executes its requests in
    tuple order, each producing its own client reply.

    A single-request batch is never put on the wire: the batching layer
    unwraps it to the bare :class:`ClientRequest`, so ``batch_size=1``
    produces byte-identical traffic to the unbatched protocol.
    """

    requests: Tuple[ClientRequest, ...]

    def __post_init__(self) -> None:
        if len(self.requests) < 2:
            raise ValueError("a RequestBatch carries at least two requests")

    def wire_size(self) -> int:
        return HEADER_BYTES + sum(r.wire_size() for r in self.requests)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[ClientRequest]:
        return iter(self.requests)


Proposal = Any
"""What a primary orders at one sequence number: a bare
:class:`ClientRequest` or a :class:`RequestBatch`."""


def requests_of(proposal: Proposal) -> Tuple[ClientRequest, ...]:
    """The client requests a proposal carries, in execution order."""
    if isinstance(proposal, RequestBatch):
        return proposal.requests
    return (proposal,)


def proposal_keys(proposal: Proposal) -> Tuple[Tuple[str, int], ...]:
    """Dedup keys of every request in a proposal."""
    return tuple(r.key() for r in requests_of(proposal))


def proposal_digest(proposal: Proposal) -> bytes:
    """The digest a proposal is ordered under.

    For a bare request this is exactly the classic request digest
    (``digest((client, rid, op))``), so unbatched traffic is unchanged;
    for a batch it is one digest covering all request digests, computed
    in a single pass.
    """
    if isinstance(proposal, RequestBatch):
        return _digest(
            tuple(
                _digest((r.client, r.rid, r.op)) for r in proposal.requests
            )
        )
    return _digest((proposal.client, proposal.rid, proposal.op))


# ----------------------------------------------------------------------
# Read leases (all families; see repro.bft.leases)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LeaseGrant:
    """Primary grants (or renews) read leases on key ranges.

    Epoch-tagged: the granting manager bumps its epoch on every view
    change / reset, so acknowledgements from a previous lease era are
    ignored.  Holders additionally accept a grant only when its ``view``
    matches their own and ``primary`` is that view's primary — a view
    change implicitly invalidates every outstanding grant.
    """

    primary: str
    view: int
    epoch: int
    ranges: Tuple[int, ...]
    expiry: float  # absolute sim time; also the staleness bound anchor

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + 8 + 4 * len(self.ranges) + 8 + MAC_BYTES


@dataclass(frozen=True)
class LeaseRevoke:
    """Primary revokes leases on ranges a pending write conflicts with."""

    primary: str
    view: int
    epoch: int
    ranges: Tuple[int, ...]

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + 8 + 4 * len(self.ranges) + MAC_BYTES


@dataclass(frozen=True)
class LeaseRevokeAck:
    """Holder confirms it stopped serving the revoked ranges."""

    replica: str
    view: int
    epoch: int
    ranges: Tuple[int, ...]

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + 8 + 4 * len(self.ranges) + MAC_BYTES


@dataclass(frozen=True)
class ReadNack:
    """A replica refuses a leased read (no valid covering lease).

    The client re-issues the same rid as a quorum fast-path read; that
    path's own timeout fallback then covers the ordered case.
    """

    replica: str
    client: str
    rid: int

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + MAC_BYTES


# ----------------------------------------------------------------------
# State synchronisation (all families: rejuvenation catch-up, view-change
# catch-up, protocol switching)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StateRequest:
    """Ask peers for application state newer than ``have_seq``."""

    replica: str
    have_seq: int

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + MAC_BYTES


@dataclass(frozen=True)
class StateResponse:
    """A peer's state offer: full snapshot + its digest for cross-checking.

    Requesters adopt a snapshot only once ``state_sync_quorum`` responders
    agree on (last_executed, state_digest) — a single Byzantine responder
    cannot poison a recovering replica.
    """

    replica: str
    last_executed: int
    state_digest: bytes
    state: Any  # the export_state() dict; opaque to the wire layer

    def wire_size(self) -> int:
        # Snapshot size dominates; approximate from the dedup cache size.
        executed = self.state.get("executed_requests", {}) if isinstance(self.state, dict) else {}
        return HEADER_BYTES + 8 + DIGEST_BYTES + 64 + 16 * len(executed)


# ----------------------------------------------------------------------
# PBFT (3f+1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrePrepare:
    """Primary's ordering proposal; carries the full request (or batch).

    ``request`` is a :data:`Proposal`: a bare :class:`ClientRequest` or a
    :class:`RequestBatch`; ``digest`` is :func:`proposal_digest` of it.
    """

    view: int
    seq: int
    digest: bytes
    request: Proposal
    auth_size: int = 0  # MAC-vector bytes, set by the sender for accounting

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + DIGEST_BYTES + self.request.wire_size() + self.auth_size


@dataclass(frozen=True)
class Prepare:
    """Backup's agreement to the (view, seq, digest) binding."""

    view: int
    seq: int
    digest: bytes
    replica: str
    auth_size: int = 0

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + DIGEST_BYTES + self.auth_size


@dataclass(frozen=True)
class Commit:
    """Second-phase vote; 2f+1 of these commit the operation."""

    view: int
    seq: int
    digest: bytes
    replica: str
    auth_size: int = 0

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + DIGEST_BYTES + self.auth_size


@dataclass(frozen=True)
class Checkpoint:
    """Periodic state checkpoint for log truncation."""

    seq: int
    state_digest: bytes
    replica: str

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + DIGEST_BYTES + MAC_BYTES


@dataclass(frozen=True)
class ViewChange:
    """Vote to move to ``new_view``; carries the prepared-set summary."""

    new_view: int
    last_executed: int
    prepared: Tuple[Tuple[int, bytes], ...]  # (seq, digest) pairs
    replica: str

    def wire_size(self) -> int:
        return (
            HEADER_BYTES
            + 8
            + len(self.prepared) * (8 + DIGEST_BYTES)
            + MAC_BYTES
        )


@dataclass(frozen=True)
class NewView:
    """New primary's installation message with re-proposals."""

    view: int
    reproposals: Tuple[PrePrepare, ...]
    replica: str

    def wire_size(self) -> int:
        return HEADER_BYTES + sum(p.wire_size() for p in self.reproposals) + MAC_BYTES


# ----------------------------------------------------------------------
# MinBFT (2f+1, USIG)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MbPrepare:
    """Primary's proposal.

    The UI's counter orders the primary's message stream (``seq``); the
    primary additionally assigns the *global execution sequence*
    (``exec_seq``) so replicas that join or recover mid-stream agree on
    operation numbering.  A primary lying about ``exec_seq`` produces a
    detectable stall (replicas execute only at last_executed + 1), never
    divergence.
    """

    view: int
    request: Proposal  # bare ClientRequest or RequestBatch
    digest: bytes
    ui: UI
    exec_seq: int = 0

    @property
    def seq(self) -> int:
        """Stream sequence assigned by the primary's USIG counter."""
        return self.ui.counter

    def wire_size(self) -> int:
        return (
            HEADER_BYTES + 8 + DIGEST_BYTES + self.request.wire_size() + self.ui.size_bytes
        )


@dataclass(frozen=True)
class MbCommit:
    """Backup's commit; binds its own UI to the primary's prepare UI."""

    view: int
    replica: str
    prepare_ui: UI
    digest: bytes
    ui: UI

    @property
    def seq(self) -> int:
        """Sequence number inherited from the prepare's UI counter."""
        return self.prepare_ui.counter

    def wire_size(self) -> int:
        return HEADER_BYTES + DIGEST_BYTES + 2 * self.ui.size_bytes


@dataclass(frozen=True)
class MbReqViewChange:
    """Request to move off a suspected-faulty primary."""

    new_view: int
    replica: str

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + MAC_BYTES


@dataclass(frozen=True)
class MbViewChange:
    """UI-certified view-change vote."""

    new_view: int
    last_executed: int
    replica: str
    ui: UI

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + self.ui.size_bytes


@dataclass(frozen=True)
class MbNewView:
    """New primary installs the view, certified by its UI."""

    view: int
    start_seq: int
    replica: str
    ui: UI

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + self.ui.size_bytes


# ----------------------------------------------------------------------
# CFT (leader/majority, crash-only)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Append:
    """Leader replicates an operation (or batch) at (term, seq)."""

    term: int
    seq: int
    request: Proposal  # bare ClientRequest or RequestBatch
    leader: str

    def wire_size(self) -> int:
        # No MACs: the CFT deployment trusts its enclosure.
        return HEADER_BYTES + 8 + self.request.wire_size()


@dataclass(frozen=True)
class AppendAck:
    """Follower acknowledgement."""

    term: int
    seq: int
    replica: str

    def wire_size(self) -> int:
        return HEADER_BYTES + 8


@dataclass(frozen=True)
class CommitNotice:
    """Leader announces commit of everything up to ``seq``."""

    term: int
    seq: int
    leader: str

    def wire_size(self) -> int:
        return HEADER_BYTES + 8


@dataclass(frozen=True)
class LeaderElect:
    """Crash-failover election message (simplified single-round)."""

    term: int
    candidate: str
    last_seq: int

    def wire_size(self) -> int:
        return HEADER_BYTES + 8


@dataclass(frozen=True)
class LeaderElectAck:
    """Vote for a candidate in ``term``."""

    term: int
    candidate: str
    replica: str

    def wire_size(self) -> int:
        return HEADER_BYTES + 8


# ----------------------------------------------------------------------
# Passive replication (primary/backup)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StateUpdate:
    """Primary ships the executed operation(s) + resulting state digest."""

    seq: int
    request: Proposal  # bare ClientRequest or RequestBatch
    result: Any
    state_digest: bytes

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + self.request.wire_size() + DIGEST_BYTES + _op_size(self.result)


@dataclass(frozen=True)
class StateAck:
    """Backup acknowledges a state update."""

    seq: int
    replica: str

    def wire_size(self) -> int:
        return HEADER_BYTES + 8


@dataclass(frozen=True)
class Heartbeat:
    """Primary liveness beacon for the backup's failure detector."""

    primary: str
    seq: int

    def wire_size(self) -> int:
        return HEADER_BYTES + 8
