"""Primary-granted read leases: single-replica reads with bounded staleness.

Production traffic is read-dominated, and even the E12 fast path pays an
f+1 unordered quorum round per read.  This module lets the primary grant
**per-key-range read leases** to its replicas: a leased replica answers
``get`` ops from local committed state in **one NoC hop**, with zero
ordered-log traffic.  Safety comes from *write-through invalidation*:

* the primary holds any write that conflicts with a leased range until
  every holder acknowledged a :class:`~repro.bft.messages.LeaseRevoke`
  **or** the lease expired (a crashed holder cannot ack, so the lease
  ``duration`` is the hard staleness bound);
* holders tag grants with the granting view — a view change invalidates
  every outstanding lease without any extra message;
* a new primary *quiesces*: conflicting writes are held for one full
  ``duration`` after a view/term change, covering leases a partitioned
  old-view holder may still honor;
* the primary's own authority to grant (and to answer leased reads
  itself) is backed by **commit evidence**: it expires ``duration`` after
  the last committed operation, so a partitioned primary stops serving
  and stops renewing within the bound;
* the fault detector / rejuvenation machinery revokes a suspect's leases
  (:meth:`LeaseManager.revoke_holder`) before the replica is healed and
  re-granted (:meth:`LeaseManager.readmit_holder`).

Exactness contract (the repo discipline): ``leases=None`` — or a config
with ``enabled=False`` — creates **no** manager, table, timer, or
message; runs are event-identical to the pre-lease protocols, which
``tests/test_bft_leases.py`` asserts per family.

Environment override (mirrors ``REPRO_CONSENSUS_BATCH``): when a
protocol config leaves ``leases`` unset, ``REPRO_BFT_LEASES=1`` supplies
the default :class:`LeaseConfig`; ``REPRO_BFT_LEASES=<duration>`` sets
the staleness bound too.  Unset/empty/``0`` means no leases.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.bft.messages import (
    ClientRequest,
    LeaseGrant,
    LeaseRevoke,
    LeaseRevokeAck,
)
from repro.sim.timers import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.bft.replica import BaseReplica

DEFAULT_N_RANGES = 16
DEFAULT_DURATION = 15_000.0
DEFAULT_RENEW_PERIOD = 5_000.0


def stable_key_hash(key: str) -> int:
    """A process-independent key hash (PYTHONHASHSEED must not matter)."""
    return zlib.crc32(key.encode("utf-8"))


def range_of(key: str, n_ranges: int) -> int:
    """The lease range a key belongs to."""
    return stable_key_hash(key) % n_ranges


def keys_of(op: Any) -> Optional[Tuple[str, ...]]:
    """The keys a KV operation touches; None when underivable.

    Underivable operations conservatively conflict with *all* ranges on
    the write path and are never served from a lease on the read path.
    """
    if isinstance(op, (tuple, list)) and len(op) >= 2:
        kind = op[0]
        if kind in ("put", "get", "del", "cas") and isinstance(op[1], str):
            return (op[1],)
        if kind == "mget" and all(isinstance(k, str) for k in op[1:]):
            return tuple(op[1:])
    return None


@dataclass
class LeaseConfig:
    """Lease knobs shared by every protocol family.

    ``duration`` is both the lease lifetime and the *staleness bound*: a
    leased read never returns a value older than ``duration`` behind the
    committed state.  ``renew_period`` is the primary's grant cadence
    (must not exceed the duration or leases flap).  ``n_ranges`` trades
    revocation precision against grant-message size.
    """

    enabled: bool = True
    n_ranges: int = DEFAULT_N_RANGES
    duration: float = DEFAULT_DURATION
    renew_period: float = DEFAULT_RENEW_PERIOD

    def __post_init__(self) -> None:
        if self.n_ranges < 1:
            raise ValueError(f"n_ranges must be >= 1, got {self.n_ranges}")
        if self.duration <= 0:
            raise ValueError(f"lease duration must be positive, got {self.duration}")
        if not 0 < self.renew_period <= self.duration:
            raise ValueError(
                f"renew_period must be in (0, duration], got {self.renew_period}"
            )

    @staticmethod
    def from_env() -> Optional["LeaseConfig"]:
        """Parse ``REPRO_BFT_LEASES``; None when unset/disabled."""
        raw = os.environ.get("REPRO_BFT_LEASES", "").strip()
        if not raw or raw.lower() in ("0", "false", "no"):
            return None
        if raw.lower() in ("1", "true", "yes", "on"):
            return LeaseConfig()
        duration = float(raw)
        return LeaseConfig(duration=duration, renew_period=duration / 3.0)


def resolve_leases(configured: Optional[LeaseConfig]) -> Optional[LeaseConfig]:
    """A protocol config's ``leases`` field, or the env override.

    A config with ``enabled=False`` resolves to None — byte-identical to
    never configuring leases at all (the identity tests rely on it).
    """
    if configured is not None:
        return configured if configured.enabled else None
    return LeaseConfig.from_env()


class LeaseTable:
    """Holder-side lease state: which ranges this replica may serve.

    Grants are stored tagged with the view they were issued in and are
    valid only while the holder is still *in that view* — advancing the
    view (view change, term adoption, promotion) invalidates everything
    without bookkeeping.  Expiry is checked lazily at read time.
    """

    def __init__(self, replica: "BaseReplica", config: LeaseConfig) -> None:
        self.replica = replica
        self.config = config
        # range -> (view, epoch, expiry)
        self._grants: Dict[int, Tuple[int, int, float]] = {}

    def on_grant(self, sender: str, grant: LeaseGrant) -> None:
        """Accept a grant from the current view's primary."""
        replica = self.replica
        if sender != grant.primary or sender == replica.name:
            return
        if sender not in replica.group.members:
            return
        if grant.view != replica.view or replica.group.primary_of(grant.view) != sender:
            return  # stale era: the grant's view is not ours
        for r in grant.ranges:
            self._grants[r] = (grant.view, grant.epoch, grant.expiry)

    def on_revoke(self, sender: str, revoke: LeaseRevoke) -> None:
        """Drop the revoked ranges and confirm; always honored."""
        replica = self.replica
        if sender != revoke.primary or sender not in replica.group.members:
            return
        for r in revoke.ranges:
            self._grants.pop(r, None)
        ack = LeaseRevokeAck(replica.name, revoke.view, revoke.epoch, revoke.ranges)
        replica.send(sender, ack, ack.wire_size())

    def covers(self, op: Any) -> bool:
        """True if every key of ``op`` sits in a currently valid lease."""
        keys = keys_of(op)
        if not keys:
            return False
        now = self.replica.sim.now
        view = self.replica.view
        for key in keys:
            entry = self._grants.get(range_of(key, self.config.n_ranges))
            if entry is None or entry[0] != view or now >= entry[2]:
                return False
        return True

    def clear(self) -> None:
        """Forget every grant (recovery, shutdown, protocol reset)."""
        self._grants.clear()

    def __len__(self) -> int:
        return len(self._grants)


class LeaseManager:
    """Primary-side lease state: grants, revocations, held writes.

    Lives on every replica (any member can become primary), but acts only
    while ``replica.is_primary``.  The ordering gate is
    :meth:`intercept`: protocols call it from their primary admission
    funnel before ordering a mutation; a parked request re-enters through
    the protocol's ``_admit_ordered`` once its conflicting ranges clear.
    """

    def __init__(self, replica: "BaseReplica", config: LeaseConfig) -> None:
        self.replica = replica
        self.config = config
        self.epoch = 0
        # holder -> range -> expiry (grants we issued and still believe live)
        self._granted: Dict[str, Dict[int, float]] = {}
        # range -> holder -> expiry (revocations awaiting ack or expiry)
        self._revoking: Dict[int, Dict[str, float]] = {}
        # parked writes: (request, ranges still blocked)
        self._parked: List[Tuple[ClientRequest, Set[int]]] = []
        self._suspended: Set[str] = set()
        self._self_expiry: Optional[float] = None
        self._quiesce_until = 0.0
        self._timer: Optional[PeriodicTimer] = None
        gid = replica.group.group_id
        metrics = replica.group.metrics
        self._c_granted = metrics.counter(f"{gid}.lease.granted")
        self._c_renewed = metrics.counter(f"{gid}.lease.renewed")
        self._c_revoked = metrics.counter(f"{gid}.lease.revoked")
        self._c_expired = metrics.counter(f"{gid}.lease.expired")
        self._c_held = metrics.counter(f"{gid}.lease.writes_held")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the renewal cadence (requires placement on the chip)."""
        if self._timer is None:
            self._timer = PeriodicTimer(
                self.replica.sim, self.config.renew_period, self._on_renew
            )
        if self.replica.is_primary:
            # Group formation is commit-grade evidence of primacy.
            self._self_expiry = self.replica.sim.now + self.config.duration

    def stop(self) -> None:
        """Tear down (replica shutdown): no further timers or releases."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        self.reset()

    def reset(self) -> None:
        """Drop all lease state; parked writes survive in the protocol's
        pending map and re-enter via re-proposal or client retransmit."""
        self.epoch += 1
        self._granted.clear()
        self._revoking.clear()
        self._parked.clear()
        self._self_expiry = None

    def on_view_entered(self, view: int) -> None:
        """View/term change or promotion: invalidate our grant era and
        quiesce conflicting writes for one duration (partitioned holders
        of old-view leases may serve until those expire)."""
        now = self.replica.sim.now
        had_grants = any(self._granted.values()) or bool(self._revoking)
        self.reset()
        if view > 0 or had_grants:
            self._quiesce_until = max(self._quiesce_until, now + self.config.duration)
        if self.replica.is_primary:
            # Installing a view required a vote quorum: fresh evidence.
            self._self_expiry = now + self.config.duration

    # ------------------------------------------------------------------
    # Grant authority
    # ------------------------------------------------------------------
    @property
    def holds_self_lease(self) -> bool:
        """True while commit evidence backs this primary's authority."""
        return (
            self._self_expiry is not None
            and self.replica.sim.now < self._self_expiry
        )

    def on_committed(self) -> None:
        """A commit reached quorum: refresh the primary's grant authority
        (the lease renewal anchor — 'renewed on commit')."""
        if self.replica.is_primary:
            self._self_expiry = self.replica.sim.now + self.config.duration

    # ------------------------------------------------------------------
    # Renewal
    # ------------------------------------------------------------------
    def _on_renew(self) -> None:
        replica = self.replica
        if replica.state.value == "crashed" or not replica.is_primary:
            return
        if not self.holds_self_lease:
            return  # no commit evidence: a partitioned primary must not renew
        now = replica.sim.now
        expiry = now + self.config.duration
        grantable = [
            r for r in range(self.config.n_ranges) if r not in self._revoking
        ]
        if not grantable:
            return
        for holder in replica.other_members():
            if holder in self._suspended:
                continue
            held = self._granted.setdefault(holder, {})
            fresh = renewed = expired = 0
            for r in grantable:
                previous = held.get(r)
                if previous is None:
                    fresh += 1
                elif previous <= now:
                    expired += 1
                    fresh += 1
                else:
                    renewed += 1
                held[r] = expiry
            self._c_granted.inc(fresh)
            self._c_renewed.inc(renewed)
            self._c_expired.inc(expired)
            grant = LeaseGrant(
                replica.name, replica.view, self.epoch, tuple(grantable), expiry
            )
            replica.send(holder, grant, grant.wire_size())

    # ------------------------------------------------------------------
    # Write-through invalidation
    # ------------------------------------------------------------------
    def intercept(self, request: ClientRequest) -> bool:
        """Gate one to-be-ordered request; True = parked (do not order).

        Mutation-free requests (the app can answer them as reads) pass
        straight through — an ordered ``get`` cannot violate staleness.
        """
        try:
            self.replica.app.read(request.op)
        except ValueError:
            pass  # a genuine mutation: check lease conflicts
        else:
            return False
        key = request.key()
        if any(parked.key() == key for parked, _ in self._parked):
            return True  # a retransmit of an already-parked write
        now = self.replica.sim.now
        keys = keys_of(request.op)
        if keys is None:
            needed = set(range(self.config.n_ranges))
        else:
            needed = {range_of(k, self.config.n_ranges) for k in keys}
        blocked: Set[int] = set()
        if now < self._quiesce_until:
            for r in needed:
                self._begin_revocation(r, {}, self._quiesce_until)
                blocked.add(r)
        for r in needed:
            if r in self._revoking:
                blocked.add(r)
                continue
            holders = self._conflicting_holders(r, now)
            if holders:
                self._begin_revocation(r, holders, max(holders.values()))
                self._send_revokes({r: holders})
                blocked.add(r)
        if not blocked:
            return False
        self._c_held.inc()
        self._parked.append((request, blocked))
        return True

    def _conflicting_holders(self, r: int, now: float) -> Dict[str, float]:
        """Holders with an unexpired grant on range ``r``; prunes expired."""
        out: Dict[str, float] = {}
        for holder, held in self._granted.items():
            expiry = held.get(r)
            if expiry is None:
                continue
            if expiry <= now:
                del held[r]
                self._c_expired.inc()
                continue
            out[holder] = expiry
        return out

    def _begin_revocation(
        self, r: int, holders: Dict[str, float], release_at: float
    ) -> None:
        waiting = self._revoking.setdefault(r, {})
        waiting.update(holders)
        for holder in holders:
            self._granted.get(holder, {}).pop(r, None)
        delay = max(0.0, release_at - self.replica.sim.now)
        self.replica.sim.schedule(delay + 1.0, self._expire_revocations, self.epoch)

    def _send_revokes(self, per_range: Dict[int, Dict[str, float]]) -> None:
        # Regroup range->holders into holder->ranges: one message each.
        by_holder: Dict[str, List[int]] = {}
        for r, holders in per_range.items():
            for holder in holders:
                by_holder.setdefault(holder, []).append(r)
        replica = self.replica
        for holder, ranges in sorted(by_holder.items()):
            self._c_revoked.inc(len(ranges))
            revoke = LeaseRevoke(
                replica.name, replica.view, self.epoch, tuple(sorted(ranges))
            )
            replica.send(holder, revoke, revoke.wire_size())

    def on_revoke_ack(self, sender: str, ack: LeaseRevokeAck) -> None:
        """A holder confirmed it stopped serving; maybe release writes."""
        if ack.epoch != self.epoch or sender != ack.replica:
            return
        if sender not in self.replica.group.members:
            return
        for r in ack.ranges:
            waiting = self._revoking.get(r)
            if waiting is not None and sender in waiting:
                del waiting[sender]
                if not waiting and self.replica.sim.now >= self._quiesce_until:
                    self._clear_range(r)

    def _expire_revocations(self, epoch: int) -> None:
        if epoch != self.epoch or self.replica.state.value == "crashed":
            return
        now = self.replica.sim.now
        if now < self._quiesce_until:
            return  # a later backstop (scheduled at quiesce end) finishes
        for r in list(self._revoking):
            waiting = self._revoking[r]
            for holder in [h for h, exp in waiting.items() if exp <= now]:
                del waiting[holder]
                self._c_expired.inc()
            if not waiting:
                self._clear_range(r)

    def _clear_range(self, r: int) -> None:
        self._revoking.pop(r, None)
        released: List[ClientRequest] = []
        remaining: List[Tuple[ClientRequest, Set[int]]] = []
        for request, blocked in self._parked:
            blocked.discard(r)
            if blocked:
                remaining.append((request, blocked))
            else:
                released.append(request)
        self._parked = remaining
        for request in released:
            self.replica.sim.call_soon(self._release, request, self.epoch)

    def _release(self, request: ClientRequest, epoch: int) -> None:
        replica = self.replica
        if epoch != self.epoch or replica.state.value == "crashed":
            return
        if not replica.is_primary or replica.already_executed(request):
            return
        replica._admit_ordered(request)

    # ------------------------------------------------------------------
    # Detector / rejuvenation integration
    # ------------------------------------------------------------------
    def revoke_holder(self, name: str) -> None:
        """Revoke every lease of one holder (suspicion, rejuvenation) and
        suspend re-granting until :meth:`readmit_holder`."""
        self._suspended.add(name)
        held = self._granted.get(name)
        if not held:
            return
        ranges = dict(held)
        for r, expiry in ranges.items():
            self._begin_revocation(r, {name: expiry}, expiry)
        self._send_revokes({r: {name: exp} for r, exp in ranges.items()})

    def readmit_holder(self, name: str) -> None:
        """Allow re-granting to a healed holder (next renewal tick)."""
        self._suspended.discard(name)

    # ------------------------------------------------------------------
    @property
    def parked_writes(self) -> int:
        """Writes currently held awaiting revocation (observability)."""
        return len(self._parked)
