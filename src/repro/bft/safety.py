"""Global safety recorder: detects agreement violations across replicas.

The recorder sits outside the protocol (omniscient observer) and checks
the two SMR safety invariants on every commit by a *correct* replica:

* **Agreement** — no two correct replicas commit different operation
  digests at the same sequence number (within one protocol era).
* **Order** — each correct replica executes sequence numbers in order
  without gaps.

Commits by crashed/compromised replicas are recorded but excluded from
violation checks (a Byzantine replica diverging locally is allowed; the
protocol must only protect correct replicas and clients).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Violation:
    """One detected safety violation."""

    kind: str  # "agreement" or "order"
    seq: int
    detail: str


class SafetyRecorder:
    """Records commits and flags violations.  One per experiment/era."""

    def __init__(self) -> None:
        self._committed: Dict[int, Tuple[bytes, str]] = {}  # seq -> (digest, first replica)
        self._last_executed: Dict[str, int] = {}
        self.violations: List[Violation] = []
        self.total_commits = 0

    def record_commit(
        self, replica: str, seq: int, digest: bytes, replica_correct: bool = True
    ) -> None:
        """Record that ``replica`` committed ``digest`` at ``seq``."""
        self.total_commits += 1
        if not replica_correct:
            return
        existing = self._committed.get(seq)
        if existing is None:
            self._committed[seq] = (digest, replica)
        elif existing[0] != digest:
            self.violations.append(
                Violation(
                    "agreement",
                    seq,
                    f"{replica} committed {digest.hex()[:12]} at seq {seq}, "
                    f"but {existing[1]} committed {existing[0].hex()[:12]}",
                )
            )
        last = self._last_executed.get(replica, 0)
        if seq != last + 1:
            self.violations.append(
                Violation(
                    "order",
                    seq,
                    f"{replica} executed seq {seq} after {last} (gap or replay)",
                )
            )
        self._last_executed[replica] = max(last, seq)

    def reset_replica(self, replica: str, executed_up_to: int) -> None:
        """Re-align a replica's expected next sequence after state transfer
        or rejuvenation (it legally skips re-executing transferred ops)."""
        self._last_executed[replica] = executed_up_to

    @property
    def is_safe(self) -> bool:
        """True while no violation has been recorded."""
        return not self.violations

    @property
    def highest_committed(self) -> int:
        """Highest sequence committed by any correct replica (0 if none)."""
        return max(self._committed, default=0)

    def digest_at(self, seq: int) -> Optional[bytes]:
        """The agreed digest at a sequence number, if any."""
        entry = self._committed.get(seq)
        return entry[0] if entry else None

    def summary(self) -> str:
        """One-line human summary (printed by benches)."""
        status = "SAFE" if self.is_safe else f"{len(self.violations)} VIOLATIONS"
        return f"commits={self.total_commits} highest_seq={self.highest_committed} {status}"
