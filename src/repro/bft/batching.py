"""Request batching and pipelined agreement for the consensus hot path.

With closed-loop clients and one request per agreement round, throughput
is bounded by protocol latency: every operation pays a full three-phase
exchange (PBFT) or UI-signed round (MinBFT) plus one MAC vector / USIG
certificate of its own.  Batching amortizes that per-round cost — the
primary accumulates incoming :class:`~repro.bft.messages.ClientRequest`\\ s
into a batch closed by **size** (``batch_size`` requests), **bytes**
(``batch_bytes`` of payload), or **time** (``batch_delay`` after the first
request), and runs *one* agreement round per batch.  Pipelining bounds
concurrency instead of forbidding it: up to ``max_inflight`` sequence
numbers may be in flight at once.  Batches are cut at **dispatch** time,
not at admission: while the window is full, requests pool in the open
accumulator, so backpressure produces *fuller* batches instead of a
queue of fragments — the self-reinforcing behaviour that makes batching
pay off under load.

Exactness contract: with ``batch_size=1`` (and no delay/byte bound) the
accumulator closes every batch synchronously at admission, unwraps it to
the bare request, and schedules **no events of its own** — the message
stream, event order, and results are byte-identical to the unbatched
protocol.  ``REPRO_CONSENSUS_BATCH=1`` forces this degenerate mode through
the batching machinery, which is how the P2 bench proves the equivalence.

Environment override (mirrors ``REPRO_NOC_EXPRESS``): when a protocol
config leaves ``batching`` unset, ``REPRO_CONSENSUS_BATCH`` supplies one —
``"<batch_size>[x<max_inflight>][@<batch_delay>]"``, e.g. ``8x16@200``.
Unset/empty/``0`` means no batching (the legacy path).
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional, Set, Tuple, TYPE_CHECKING

from repro.bft.messages import ClientRequest, RequestBatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.bft.replica import BaseReplica

ProposeFn = Callable[[Any], bool]
"""Protocol callback: order one proposal now.  Returns False if the
proposal could not be admitted (watermark full, not primary any more);
the accumulator then releases its window slot and drops the batch —
clients retransmit, exactly as with the unbatched protocols."""


@dataclass
class BatchConfig:
    """Batching/pipelining knobs shared by every protocol family.

    ``batch_size``   — close a batch once it holds this many requests.
    ``batch_bytes``  — also close once payload bytes reach this (0 = off).
    ``batch_delay``  — close a partial batch this long after its first
                       request arrived.  0 means only size/byte bounds
                       close batches: with ``batch_size > 1`` a workload
                       that never pools a full batch (fewer outstanding
                       requests than the batch size) stalls, so pair
                       real batching with a delay bound.
    ``max_inflight`` — concurrent uncommitted sequence numbers the primary
                       may have outstanding (0 = unbounded, the legacy
                       watermark-only behaviour).
    """

    batch_size: int = 1
    batch_bytes: int = 0
    batch_delay: float = 0.0
    max_inflight: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.batch_bytes < 0 or self.batch_delay < 0 or self.max_inflight < 0:
            raise ValueError("batching bounds must be non-negative")

    @staticmethod
    def from_env() -> Optional["BatchConfig"]:
        """Parse ``REPRO_CONSENSUS_BATCH``; None when unset/disabled."""
        raw = os.environ.get("REPRO_CONSENSUS_BATCH", "").strip()
        if not raw or raw.lower() in ("0", "false", "no"):
            return None
        delay = 0.0
        if "@" in raw:
            raw, delay_part = raw.split("@", 1)
            delay = float(delay_part)
        inflight = 0
        if "x" in raw:
            raw, inflight_part = raw.split("x", 1)
            inflight = int(inflight_part)
        return BatchConfig(
            batch_size=int(raw), batch_delay=delay, max_inflight=inflight
        )


def resolve_batching(configured: Optional[BatchConfig]) -> Optional[BatchConfig]:
    """A protocol config's ``batching`` field, or the env override."""
    return configured if configured is not None else BatchConfig.from_env()


class BatchAccumulator:
    """Primary-side request accumulator with a bounded in-flight window.

    The owning replica feeds deduplicated requests through :meth:`add`;
    the accumulator cuts batches per the config's bounds and calls the
    protocol's propose callback synchronously.  Batches are cut at
    dispatch time: while the in-flight window is full, requests pool in
    ``_open`` and later cuts are fuller.  :meth:`on_committed` must be
    called once per committed sequence number so pooled requests drain
    into freed window slots.  All bookkeeping is dropped by :meth:`reset`
    on view change / recovery — pending requests survive in the
    protocol's ``_pending_requests`` map and re-enter via re-batching.
    """

    def __init__(self, replica: "BaseReplica", config: BatchConfig, propose: ProposeFn) -> None:
        self.replica = replica
        self.config = config
        self._propose = propose
        self._open: Deque[ClientRequest] = deque()
        self._open_bytes = 0
        self.inflight = 0
        self.pending_keys: Set[Tuple[str, int]] = set()
        self._delay_due = False  # the delay timer fired with requests pooled
        self._timer_armed = False
        self._timer_gen = 0  # invalidates timers armed before a reset
        metrics = replica.group.metrics
        gid = replica.group.group_id
        self._size_hist = metrics.histogram(f"{gid}.batch.size")
        self._inflight_gauge = metrics.gauge(f"{gid}.inflight")

    # ------------------------------------------------------------------
    def add(self, request: ClientRequest) -> None:
        """Admit one request; may cut and propose a batch synchronously."""
        self.pending_keys.add(request.key())
        self._open.append(request)
        self._open_bytes += request.wire_size()
        self._pump()
        self._maybe_arm_timer()

    def on_committed(self) -> None:
        """One proposed sequence number committed: free a window slot."""
        if self.inflight > 0:
            self.inflight -= 1
            self._inflight_gauge.set(float(self.inflight))
        self._pump()
        self._maybe_arm_timer()

    def flush(self) -> None:
        """Dispatch everything pooled now, window permitting (view
        installation / re-batching); any remainder pumps out on commits."""
        while self._open and self._window_free():
            self._cut()
        self._maybe_arm_timer()

    def reset(self) -> None:
        """Drop all bookkeeping (view change, recovery, shutdown)."""
        self._timer_gen += 1
        self._timer_armed = False
        self._delay_due = False
        self._open.clear()
        self._open_bytes = 0
        self.pending_keys.clear()
        self.inflight = 0
        self._inflight_gauge.set(0.0)

    # ------------------------------------------------------------------
    def _window_free(self) -> bool:
        return self.config.max_inflight == 0 or self.inflight < self.config.max_inflight

    def _pump(self) -> None:
        cfg = self.config
        while self._open and self._window_free():
            full = len(self._open) >= cfg.batch_size or (
                cfg.batch_bytes > 0 and self._open_bytes >= cfg.batch_bytes
            )
            if not full and not self._delay_due:
                break
            partial = not full  # a partial cut consumes the delay credit
            self._cut()
            if partial:
                self._delay_due = False

    def _cut(self) -> None:
        """Dispatch up to one batch_size worth of pooled requests."""
        k = min(len(self._open), self.config.batch_size)
        requests = [self._open.popleft() for _ in range(k)]
        self._open_bytes -= sum(r.wire_size() for r in requests)
        # A single request goes on the wire bare: batch_size=1 traffic is
        # byte-identical to the unbatched protocol.
        proposal = requests[0] if k == 1 else RequestBatch(tuple(requests))
        self._size_hist.observe(float(k))
        self.inflight += 1
        self._inflight_gauge.set(float(self.inflight))
        if not self._propose(proposal):
            # Watermark full / demoted mid-batch: drop, free the slot —
            # clients retransmit, exactly as with the unbatched protocols.
            self.inflight -= 1
            self._inflight_gauge.set(float(self.inflight))
        for request in requests:
            self.pending_keys.discard(request.key())

    def _maybe_arm_timer(self) -> None:
        if self._open and self.config.batch_delay > 0 and not self._timer_armed:
            self._timer_armed = True
            self.replica.sim.schedule(
                self.config.batch_delay, self._on_delay, self._timer_gen
            )

    def _on_delay(self, gen: int) -> None:
        if gen != self._timer_gen:
            return  # armed before a reset
        self._timer_armed = False
        if self.replica.state.value == "crashed":
            return
        if self._open:
            self._delay_due = True
            self._pump()
        self._maybe_arm_timer()
