"""MinBFT (Veronese et al., IEEE ToC 2011): 2f+1 replicas with USIG.

The flagship hybrid protocol of the paper's §III: a USIG per replica
makes equivocation impossible (each message gets a unique, monotonically
increasing counter certified inside a trusted perimeter), which

* cuts the replica bound from 3f+1 to **2f+1**, and
* removes one protocol phase: PREPARE (primary, UI-certified) followed by
  COMMIT (backups, UI-certified); the primary's PREPARE doubles as its
  commit vote, and an operation commits once f+1 matching votes exist.

As in the original protocol, receivers verify **every** UI-carrying
message from a given sender in counter order: out-of-order messages are
held back until the gap closes, duplicates are dropped, and a message
whose counter can never become current (suppressed predecessor) simply
never executes — the hybrid turns equivocation and suppression into
liveness problems that the view change resolves, never into safety
problems.  The sequence number of an operation *is* the primary's USIG
counter for its PREPARE.

Experiment E6 injects bitflips into the USIG counter register to show why
the hybrid's storage must be ECC-protected: a plain register lets the
counter jump, which the sequential check converts into a stall (and the
halted-USIG case kills the replica outright).

Optional request batching + pipelined agreement
(``MinBftConfig.batching``, a :class:`~repro.bft.batching.BatchConfig`):
one UI-signed PREPARE — one ``usig_create`` — orders a whole batch under
a single batch digest, with a bounded in-flight window of concurrent
counters.  ``batch_size=1`` reproduces the unbatched protocol
event-for-event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.bft.batching import BatchAccumulator, BatchConfig, resolve_batching
from repro.bft.leases import LeaseConfig, LeaseManager, LeaseTable, resolve_leases
from repro.bft.messages import (
    ClientRequest,
    MbCommit,
    MbNewView,
    MbPrepare,
    MbReqViewChange,
    MbViewChange,
    Proposal,
    proposal_digest,
    proposal_keys,
    requests_of,
)
from repro.bft.replica import BaseReplica, GroupContext
from repro.hybrids.usig import UI, Usig, UsigError, UsigVerifier
from repro.sim.timers import Timeout
from repro.soc.chip import is_corrupted


@dataclass
class MinBftConfig:
    """Protocol knobs.

    ``batching`` enables request batching + a bounded in-flight window on
    the primary (see :mod:`repro.bft.batching`); None keeps the classic
    one-request-per-UI-round behaviour, byte for byte.  Batching is where
    the USIG pays off most: one usig_create certifies a whole batch.
    """

    view_timeout: float = 40_000.0
    register_kind: str = "ecc"
    batching: Optional[BatchConfig] = None
    leases: Optional[LeaseConfig] = None


@dataclass
class _MbSlot:
    """Per-sequence agreement state."""

    prepare: Optional[MbPrepare] = None
    commit_votes: Dict[str, bytes] = field(default_factory=dict)  # sender -> digest
    committed: bool = False
    commit_sent: bool = False


def required_replicas(f: int) -> int:
    """MinBFT needs 2f+1 replicas to tolerate f Byzantine faults."""
    return 2 * f + 1


def _ui_payload(message: Any) -> bytes:
    """The byte string a message's UI must certify."""
    if isinstance(message, MbPrepare):
        return (
            b"prep|"
            + message.view.to_bytes(8, "big")
            + message.exec_seq.to_bytes(8, "big")
            + message.digest
        )
    if isinstance(message, MbCommit):
        return (
            b"comm|"
            + message.view.to_bytes(8, "big")
            + message.prepare_ui.counter.to_bytes(8, "big")
            + message.digest
        )
    if isinstance(message, MbViewChange):
        return b"vc|" + message.new_view.to_bytes(8, "big")
    if isinstance(message, MbNewView):
        return b"nv|" + message.view.to_bytes(8, "big")
    raise TypeError(f"{type(message).__name__} carries no UI")


class MinBftReplica(BaseReplica):
    """One MinBFT replica with its USIG hybrid."""

    def __init__(
        self, name: str, group: GroupContext, config: Optional[MinBftConfig] = None
    ) -> None:
        super().__init__(name, group)
        self.config = config or MinBftConfig()
        expected = required_replicas(group.f)
        if group.n < expected:
            raise ValueError(f"MinBFT with f={group.f} needs n>={expected}, got {group.n}")
        self.usig = Usig(name, group.keystore, self.config.register_kind)
        self.verifier = UsigVerifier(group.keystore)
        self._slots: Dict[int, _MbSlot] = {}
        self._holdback: Dict[str, Dict[int, Any]] = {}
        self._expected_counter: Dict[str, Optional[int]] = {}
        # Execution follows prepare-counter order within a view: committed
        # slots park in _ready until the cursor (next counter to execute)
        # reaches them; the global execution sequence is last_executed + 1.
        self._exec_cursor: Optional[int] = None
        self._ready: Dict[int, MbPrepare] = {}
        self._next_exec_seq = 0
        self._pending_requests: Dict[Tuple[str, int], ClientRequest] = {}
        self._req_view_change_votes: Dict[int, set] = {}
        self._view_change_votes: Dict[int, Dict[str, MbViewChange]] = {}
        self._in_view_change = False
        self._view_timer = None
        self.usig_failures = 0
        batching = resolve_batching(self.config.batching)
        if batching is not None:
            self.batcher = BatchAccumulator(self, batching, self._propose_proposal)
        leases = resolve_leases(self.config.leases)
        if leases is not None:
            self.lease_table = LeaseTable(self, leases)
            self.lease_manager = LeaseManager(self, leases)

    # ------------------------------------------------------------------
    @property
    def commit_quorum(self) -> int:
        """Matching commit votes needed (prepare counts as the primary's): f+1."""
        return self.group.f + 1

    def _create_ui(self, payload: bytes) -> Optional[UI]:
        """Ask the local USIG for a certificate; None if the hybrid halted."""
        try:
            return self.usig.create_ui(payload)
        except UsigError:
            self.usig_failures += 1
            self.group.metrics.counter(f"{self.group.group_id}.usig_halted").inc()
            return None

    # ------------------------------------------------------------------
    # Timer plumbing
    # ------------------------------------------------------------------
    def _ensure_timer(self) -> Timeout:
        if self._view_timer is None:
            self._view_timer = Timeout(self.sim, self.config.view_timeout, self._on_view_timeout)
        return self._view_timer

    def _note_pending(self, request: ClientRequest) -> None:
        if request.key() in self._pending_requests or self.already_executed(request):
            return
        self._pending_requests[request.key()] = request
        timer = self._ensure_timer()
        if not timer.armed:
            timer.start()

    def _note_executed(self, request: ClientRequest) -> None:
        self._pending_requests.pop(request.key(), None)
        timer = self._ensure_timer()
        if self._pending_requests:
            timer.start()
        else:
            timer.cancel()

    # ------------------------------------------------------------------
    # Dispatch with per-sender sequential UI processing
    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:
        if is_corrupted(message):
            self.group.metrics.counter(f"{self.group.group_id}.corrupt_dropped").inc()
            return
        if self.handle_common(sender, message):
            return
        if isinstance(message, ClientRequest):
            self._handle_request(sender, message)
            return
        if sender not in self.group.members:
            return
        if isinstance(message, MbReqViewChange):
            # No UI on this message type; handle directly.
            self._handle_req_view_change(sender, message)
            return
        if not isinstance(message, (MbPrepare, MbCommit, MbViewChange, MbNewView)):
            # Stale traffic from a previous protocol era (the group may
            # have just switched families); ignore.
            return
        delay = self.charge(self.costs.usig_verify)
        self.sim.schedule(delay, self._sequence_ui_message, sender, message)

    def _sequence_ui_message(self, sender: str, message: Any) -> None:
        """Verify the UI and enforce per-sender counter order with hold-back."""
        if self.state.value == "crashed":
            return
        ui: UI = message.ui
        if ui.replica_id != sender:
            return
        if not self.verifier.verify_ui(ui, _ui_payload(message)):
            self.group.metrics.counter(f"{self.group.group_id}.ui_rejected").inc()
            return
        expected = self._expected_counter.get(sender)
        if expected is None:
            # First contact (or post-recovery resync): adopt the sender's
            # current counter as the stream head.
            expected = ui.counter
        if ui.counter < expected:
            return  # duplicate / replay
        if ui.counter > expected:
            queue = self._holdback.setdefault(sender, {})
            queue[ui.counter] = message
            return
        self._expected_counter[sender] = expected + 1
        self._process_ui_message(sender, message)
        self._drain_holdback(sender)

    def _drain_holdback(self, sender: str) -> None:
        queue = self._holdback.get(sender)
        if not queue:
            return
        while True:
            expected = self._expected_counter.get(sender)
            if expected is None or expected not in queue:
                break
            message = queue.pop(expected)
            self._expected_counter[sender] = expected + 1
            self._process_ui_message(sender, message)

    def _process_ui_message(self, sender: str, message: Any) -> None:
        if isinstance(message, MbPrepare):
            self._handle_prepare(sender, message)
        elif isinstance(message, MbCommit):
            self._handle_commit(sender, message)
        elif isinstance(message, MbViewChange):
            self._handle_view_change(sender, message)
        elif isinstance(message, MbNewView):
            self._handle_new_view(sender, message)

    # ------------------------------------------------------------------
    # Normal case
    # ------------------------------------------------------------------
    def _handle_request(self, sender: str, request: ClientRequest) -> None:
        if self.already_executed(request):
            self.resend_cached_reply(request)
            return
        if self._in_view_change:
            self._note_pending(request)
            return
        if self.is_primary:
            if self.lease_manager is not None:
                self._note_pending(request)  # parked writes survive view changes
                if self.lease_manager.intercept(request):
                    return
            self._admit_ordered(request)
        else:
            self.send(self.primary, request, request.wire_size())
            self._note_pending(request)

    def _admit_ordered(self, request: ClientRequest) -> None:
        if self.batcher is not None:
            if self._already_ordering(request) or request.key() in self.batcher.pending_keys:
                return
            self.batcher.add(request)
        else:
            self._propose(request)

    def _already_ordering(self, request: ClientRequest) -> bool:
        return any(
            slot.prepare is not None
            and not slot.committed
            and request.key() in proposal_keys(slot.prepare.request)
            for slot in self._slots.values()
        )

    def _propose(self, request: ClientRequest) -> None:
        if self._already_ordering(request):
            return
        self._propose_proposal(request)

    def _propose_proposal(self, proposal: Proposal) -> bool:
        """Order one proposal (a bare request, or a RequestBatch): a single
        usig_create charge covers the whole batch."""
        if self._in_view_change or not self.is_primary:
            return False  # demoted while the batch was queued
        dig = proposal_digest(proposal)
        delay = self.charge(self.costs.usig_create)
        self.sim.schedule(delay, self._send_prepare, proposal, dig)
        return True

    def _send_prepare(self, proposal: Proposal, dig: bytes) -> None:
        if self.state.value == "crashed" or not self.is_primary or self._in_view_change:
            return
        self._next_exec_seq = max(self._next_exec_seq, self.last_executed) + 1
        exec_seq = self._next_exec_seq
        ui = self._create_ui(
            b"prep|"
            + self.view.to_bytes(8, "big")
            + exec_seq.to_bytes(8, "big")
            + dig
        )
        if ui is None:
            return
        message = MbPrepare(self.view, proposal, dig, ui, exec_seq)
        slot = self._slots.setdefault(message.seq, _MbSlot())
        slot.prepare = message
        slot.commit_votes[self.name] = dig  # prepare doubles as primary's vote
        if self._exec_cursor is None:
            self._exec_cursor = message.seq
        for request in requests_of(proposal):
            self._note_pending(request)
        self.broadcast(self.other_members(), message, message.wire_size())
        self._maybe_committed(message.seq)

    def _handle_prepare(self, sender: str, message: MbPrepare) -> None:
        if message.view != self.view or self._in_view_change:
            return
        if sender != self.primary:
            return
        if proposal_digest(message.request) != message.digest:
            self.group.metrics.counter(f"{self.group.group_id}.bad_digest").inc()
            return
        slot = self._slots.setdefault(message.seq, _MbSlot())
        if slot.prepare is None:
            slot.prepare = message
        slot.commit_votes[sender] = message.digest
        if self._exec_cursor is None:
            # Prepares from the primary arrive in counter order (the
            # hold-back queue guarantees it), so the first one seen in a
            # view is the view's lowest sequence.
            self._exec_cursor = message.seq
        for request in requests_of(message.request):
            self._note_pending(request)
        self._send_commit(message)
        self._maybe_committed(message.seq)

    def _send_commit(self, prepare: MbPrepare) -> None:
        slot = self._slots.setdefault(prepare.seq, _MbSlot())
        if slot.commit_sent:
            return
        slot.commit_sent = True
        delay = self.charge(self.costs.usig_create)
        self.sim.schedule(delay, self._emit_commit, prepare)

    def _emit_commit(self, prepare: MbPrepare) -> None:
        if self.state.value == "crashed":
            return
        ui = self._create_ui(
            b"comm|"
            + prepare.view.to_bytes(8, "big")
            + prepare.ui.counter.to_bytes(8, "big")
            + prepare.digest
        )
        if ui is None:
            return
        message = MbCommit(prepare.view, self.name, prepare.ui, prepare.digest, ui)
        slot = self._slots.setdefault(prepare.seq, _MbSlot())
        slot.commit_votes[self.name] = prepare.digest
        self.broadcast(self.other_members(), message, message.wire_size())
        self._maybe_committed(prepare.seq)

    def _handle_commit(self, sender: str, message: MbCommit) -> None:
        if message.view != self.view or self._in_view_change:
            return
        if sender != message.replica:
            return
        slot = self._slots.setdefault(message.seq, _MbSlot())
        slot.commit_votes[sender] = message.digest
        self._maybe_committed(message.seq)

    def _maybe_committed(self, seq: int) -> None:
        slot = self._slots.get(seq)
        if slot is None or slot.committed or slot.prepare is None:
            return
        matching = sum(
            1 for dig in slot.commit_votes.values() if dig == slot.prepare.digest
        )
        if matching >= self.commit_quorum:
            slot.committed = True
            self._ready[seq] = slot.prepare
            self._drain_ready()

    def _drain_ready(self) -> None:
        """Execute committed slots in prepare-counter order.

        Gated on ``syncing``: after recovery the replica must not assign
        global sequence numbers until it knows whether peers executed
        further while it was down (its ``last_executed`` would be stale).
        """
        if self.syncing:
            return
        while self._exec_cursor is not None and self._exec_cursor in self._ready:
            prepare = self._ready[self._exec_cursor]
            if prepare.exec_seq <= self.last_executed:
                # Covered by an adopted snapshot / executed in an earlier
                # view; consuming it again would shift later numbering.
                self._ready.pop(self._exec_cursor)
                self._exec_cursor += 1
                for request in requests_of(prepare.request):
                    self._note_executed(request)
                continue
            if prepare.exec_seq > self.last_executed + 1:
                # We missed operations (joined/recovered mid-stream):
                # catch up by state transfer before executing further.
                if not self.syncing:
                    self.request_state_sync()
                return
            self._ready.pop(self._exec_cursor)
            self._exec_cursor += 1
            self.commit_operation(prepare.exec_seq, prepare.digest, prepare.request)
            for request in requests_of(prepare.request):
                self._note_executed(request)

    def on_state_synced(self) -> None:
        self._drain_ready()

    # ------------------------------------------------------------------
    # State transfer alignment
    # ------------------------------------------------------------------
    def on_state_imported(self) -> None:
        self._next_exec_seq = max(self._next_exec_seq, self.last_executed)
        self._drain_ready()

    # ------------------------------------------------------------------
    # View change (REQ-VIEW-CHANGE → VIEW-CHANGE → NEW-VIEW)
    # ------------------------------------------------------------------
    def _on_view_timeout(self) -> None:
        if not self._pending_requests:
            return
        target = self.view + 1
        message = MbReqViewChange(target, self.name)
        self._record_req_vote(self.name, target)
        self.broadcast(self.other_members(), message, message.wire_size())
        self._ensure_timer().start()

    def _handle_req_view_change(self, sender: str, message: MbReqViewChange) -> None:
        if sender != message.replica or message.new_view <= self.view:
            return
        self._record_req_vote(sender, message.new_view)

    def _record_req_vote(self, sender: str, new_view: int) -> None:
        votes = self._req_view_change_votes.setdefault(new_view, set())
        votes.add(sender)
        if len(votes) >= self.group.f + 1 and not self._in_view_change and new_view > self.view:
            self._send_view_change(new_view)

    def _send_view_change(self, new_view: int) -> None:
        self._in_view_change = True
        ui = self._create_ui(b"vc|" + new_view.to_bytes(8, "big"))
        if ui is None:
            return
        message = MbViewChange(new_view, self.last_executed, self.name, ui)
        self._record_view_change_vote(self.name, message)
        self.broadcast(self.other_members(), message, message.wire_size())
        self.group.metrics.counter(f"{self.group.group_id}.view_changes").inc()

    def _handle_view_change(self, sender: str, message: MbViewChange) -> None:
        if message.new_view <= self.view:
            return
        self._record_view_change_vote(sender, message)

    def _record_view_change_vote(self, sender: str, message: MbViewChange) -> None:
        votes = self._view_change_votes.setdefault(message.new_view, {})
        votes[sender] = message
        if (
            len(votes) >= self.group.f + 1
            and self.group.primary_of(message.new_view) == self.name
            and message.new_view > self.view
        ):
            self._install_view(message.new_view)

    def _install_view(self, new_view: int) -> None:
        ui = self._create_ui(b"nv|" + new_view.to_bytes(8, "big"))
        if ui is None:
            return
        message = MbNewView(new_view, self.last_executed, self.name, ui)
        self._enter_view(new_view)
        self.broadcast(self.other_members(), message, message.wire_size())
        self._repropose_pending()

    def _handle_new_view(self, sender: str, message: MbNewView) -> None:
        if message.view <= self.view:
            return
        if sender != self.group.primary_of(message.view):
            return
        self._enter_view(message.view)
        if message.start_seq > self.last_executed:
            # The new primary executed further than we did; catch up by
            # state transfer before processing the new view's prepares.
            self.request_state_sync()
        for request in list(self._pending_requests.values()):
            self.send(self.primary, request, request.wire_size())

    def _enter_view(self, new_view: int) -> None:
        self.view = new_view
        self._in_view_change = False
        if self.batcher is not None:
            # Window accounting restarts in the new view; pending requests
            # re-enter via _repropose_pending / client retransmission.
            self.batcher.reset()
        if self.lease_manager is not None:
            # Old-era grants and revocations are void; quiesce writes for
            # one lease duration so leftover holders drain safely.
            self.lease_manager.on_view_entered(new_view)
        if self.lease_table is not None:
            self.lease_table.clear()  # grants are view-tagged anyway; hygiene
        self._slots = {s: slot for s, slot in self._slots.items() if slot.committed}
        self._exec_cursor = None  # next accepted prepare re-anchors it
        self._ready.clear()
        self._next_exec_seq = max(self._next_exec_seq, self.last_executed)
        for stale in [v for v in self._req_view_change_votes if v <= new_view]:
            del self._req_view_change_votes[stale]
        for stale in [v for v in self._view_change_votes if v <= new_view]:
            del self._view_change_votes[stale]
        timer = self._ensure_timer()
        if self._pending_requests:
            timer.start()
        else:
            timer.cancel()

    def _repropose_pending(self) -> None:
        if not self.is_primary:
            return
        for request in list(self._pending_requests.values()):
            if self.already_executed(request):
                continue
            if self.lease_manager is not None and self.lease_manager.intercept(request):
                continue  # held by the new-view quiesce; released later
            self._admit_ordered(request)
        if self.batcher is not None:
            self.batcher.flush()

    # ------------------------------------------------------------------
    def reset_protocol_state(self) -> None:
        self._slots.clear()
        self._holdback.clear()
        self._expected_counter.clear()  # resync on first contact per sender
        self._exec_cursor = None
        self._ready.clear()
        self._pending_requests.clear()
        self._req_view_change_votes.clear()
        self._view_change_votes.clear()
        self._in_view_change = False
        if self._view_timer is not None:
            self._view_timer.cancel()
