"""Replicated application state machines.

Replication protocols order opaque operations; these classes execute
them.  Determinism is the contract (paper §II.A: "a deterministic
replicated state machine"): ``execute`` must be a pure function of the
operation sequence, and ``state_digest()`` lets replicas compare states
cheaply (checkpoints, passive state transfer, divergence tests).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.crypto.mac import digest as payload_digest


class StateMachine:
    """Interface every replicated application implements."""

    def execute(self, op: Any) -> Any:
        """Apply one operation and return its result (deterministic)."""
        raise NotImplementedError

    def read(self, op: Any) -> Any:
        """Answer a read-only operation from the current state.

        Must not mutate state.  Raises ValueError for operations that are
        not read-only (the replica then refuses the fast path).
        """
        raise ValueError(f"operation {op!r} is not read-only")

    def state_digest(self) -> bytes:
        """A digest of the full application state."""
        raise NotImplementedError

    def snapshot(self) -> Any:
        """Serializable copy of the state (state transfer)."""
        raise NotImplementedError

    def restore(self, snapshot: Any) -> None:
        """Replace the state with a snapshot."""
        raise NotImplementedError


class KeyValueStore(StateMachine):
    """A replicated KV store — the canonical SMR workload.

    Operations are tuples:
    ``("put", key, value)`` → "OK", ``("get", key)`` → value or None,
    ``("del", key)`` → "OK" / "MISSING", ``("cas", key, old, new)`` →
    True/False.
    """

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self.ops_executed = 0

    def execute(self, op: Any) -> Any:
        if not isinstance(op, tuple) or not op:
            raise ValueError(f"malformed KV operation: {op!r}")
        kind = op[0]
        self.ops_executed += 1
        if kind == "put":
            _, key, value = op
            self._data[key] = value
            return "OK"
        if kind == "get":
            _, key = op
            return self._data.get(key)
        if kind == "del":
            _, key = op
            return "OK" if self._data.pop(key, _MISSING) is not _MISSING else "MISSING"
        if kind == "cas":
            _, key, old, new = op
            if self._data.get(key) == old:
                self._data[key] = new
                return True
            return False
        raise ValueError(f"unknown KV operation kind {kind!r}")

    def read(self, op: Any) -> Any:
        if isinstance(op, tuple) and op and op[0] == "get":
            return self._data.get(op[1])
        raise ValueError(f"operation {op!r} is not read-only")

    def state_digest(self) -> bytes:
        return payload_digest({k: self._data[k] for k in sorted(self._data)})

    def snapshot(self) -> Dict[str, Any]:
        return dict(self._data)

    def restore(self, snapshot: Any) -> None:
        self._data = dict(snapshot)

    def get_local(self, key: str) -> Any:
        """Read-only local peek (tests/diagnostics, not via consensus)."""
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)


_MISSING = object()


class CounterApp(StateMachine):
    """A replicated counter — the smallest useful deterministic app.

    Operations: ``("add", k)``, ``("read",)``.  Used by control-loop
    examples where the actuator setpoint is a shared counter.
    """

    def __init__(self) -> None:
        self.value = 0
        self.ops_executed = 0

    def execute(self, op: Any) -> Any:
        self.ops_executed += 1
        if isinstance(op, tuple) and op and op[0] == "add":
            self.value += op[1]
            return self.value
        if isinstance(op, tuple) and op and op[0] == "read":
            return self.value
        raise ValueError(f"unknown counter operation {op!r}")

    def read(self, op: Any) -> Any:
        if isinstance(op, tuple) and op and op[0] == "read":
            return self.value
        raise ValueError(f"operation {op!r} is not read-only")

    def state_digest(self) -> bytes:
        return payload_digest(self.value)

    def snapshot(self) -> int:
        return self.value

    def restore(self, snapshot: Any) -> None:
        self.value = int(snapshot)


class ControlLoopApp(StateMachine):
    """A CPS control-law state machine (software-defined vehicle / grid).

    State: the last ``window`` sensor readings and the current actuator
    command.  ``("sense", value)`` folds a reading into a moving average
    and returns the new actuator command; ``("command",)`` reads it.
    Deterministic (pure arithmetic over the op stream), so replicas agree.
    """

    def __init__(self, window: int = 8, gain: float = 0.5, setpoint: float = 0.0) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.gain = gain
        self.setpoint = setpoint
        self._readings: Tuple[float, ...] = ()
        self.command = 0.0
        self.ops_executed = 0

    def execute(self, op: Any) -> Any:
        self.ops_executed += 1
        if isinstance(op, tuple) and op and op[0] == "sense":
            reading = float(op[1])
            self._readings = (self._readings + (reading,))[-self.window:]
            average = sum(self._readings) / len(self._readings)
            # Proportional control toward the setpoint.
            self.command = self.gain * (self.setpoint - average)
            return round(self.command, 9)
        if isinstance(op, tuple) and op and op[0] == "command":
            return round(self.command, 9)
        raise ValueError(f"unknown control operation {op!r}")

    def read(self, op: Any) -> Any:
        if isinstance(op, tuple) and op and op[0] == "command":
            return round(self.command, 9)
        raise ValueError(f"operation {op!r} is not read-only")

    def state_digest(self) -> bytes:
        return payload_digest((list(self._readings), round(self.command, 9)))

    def snapshot(self) -> Any:
        return (list(self._readings), self.command)

    def restore(self, snapshot: Any) -> None:
        readings, command = snapshot
        self._readings = tuple(readings)
        self.command = float(command)
