"""Passive (primary-backup) replication with a heartbeat failure detector.

Paper §II.A: "Passive replication allows a failing system to failover
into a backup replica.  This is a cheap solution that typically requires
one passive backup replica.  However, recovery is slow, requires reliable
detection and is not seamless to the user."  E8 measures exactly that:
the steady-state cost is one backup and one state-update message per
operation, but a primary crash opens a service gap of roughly the
detection timeout plus promotion, during which client requests stall.

Crash-only fault model: a Byzantine primary trivially corrupts the backup
(it ships state updates unchecked) — another reason the adaptation layer
exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.bft.batching import BatchAccumulator, BatchConfig, resolve_batching
from repro.bft.leases import LeaseConfig, LeaseManager, LeaseTable, resolve_leases
from repro.bft.messages import (
    ClientRequest,
    Heartbeat,
    Proposal,
    StateAck,
    StateUpdate,
    proposal_digest,
    proposal_keys,
)
from repro.bft.replica import BaseReplica, GroupContext
from repro.sim.timers import PeriodicTimer, Timeout
from repro.soc.chip import is_corrupted


@dataclass
class PassiveConfig:
    """Protocol knobs.

    The failure detector fires after ``detect_timeout`` without a
    heartbeat; detection accuracy vs speed is the E8 sweep axis.
    ``batching`` amortizes one StateUpdate over a batch of executed
    requests (see :mod:`repro.bft.batching`); None keeps the classic
    one-update-per-operation behaviour, byte for byte.
    """

    heartbeat_period: float = 2_000.0
    detect_timeout: float = 10_000.0
    batching: Optional[BatchConfig] = None
    leases: Optional[LeaseConfig] = None


def required_replicas(f: int) -> int:
    """Primary-backup needs f+1 replicas to survive f crash faults."""
    return f + 1


class PassiveReplica(BaseReplica):
    """Primary or backup of a passive pair (role decided by member order)."""

    def __init__(
        self, name: str, group: GroupContext, config: Optional[PassiveConfig] = None
    ) -> None:
        super().__init__(name, group)
        self.config = config or PassiveConfig()
        self.role = "primary" if group.members[0] == name else "backup"
        self._next_seq = 0
        self._applied_seq = 0
        self._buffered: Dict[Tuple[str, int], ClientRequest] = {}
        self._heartbeat_timer: Optional[PeriodicTimer] = None
        self._detector: Optional[Timeout] = None
        self.promotions = 0
        batching = resolve_batching(self.config.batching)
        if batching is not None:
            self.batcher = BatchAccumulator(self, batching, self._commit_proposal)
        leases = resolve_leases(self.config.leases)
        if leases is not None:
            self.lease_table = LeaseTable(self, leases)
            self.lease_manager = LeaseManager(self, leases)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin heartbeating (primary) or monitoring (backup).

        Must be called once the replica is placed on the chip.
        """
        super().start()  # lease renewal cadence, when enabled
        if self.role == "primary":
            self._heartbeat_timer = PeriodicTimer(
                self.sim, self.config.heartbeat_period, self._send_heartbeat
            )
        else:
            self._detector = Timeout(self.sim, self.config.detect_timeout, self._on_suspect)
            self._detector.start()

    def _send_heartbeat(self) -> None:
        if self.state.value == "crashed" or self.role != "primary":
            return
        message = Heartbeat(self.name, self._next_seq)
        self.broadcast(self.other_members(), message, message.wire_size())

    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:
        if is_corrupted(message):
            return
        if self.handle_common(sender, message):
            return
        if isinstance(message, ClientRequest):
            self._handle_request(sender, message)
        elif isinstance(message, StateUpdate):
            self._handle_state_update(sender, message)
        elif isinstance(message, StateAck):
            pass  # acks are informational in this model
        elif isinstance(message, Heartbeat):
            self._handle_heartbeat(sender, message)

    # ------------------------------------------------------------------
    # Primary path
    # ------------------------------------------------------------------
    def _handle_request(self, sender: str, request: ClientRequest) -> None:
        if self.already_executed(request):
            self.resend_cached_reply(request)
            return
        if self.role != "primary":
            # Buffer: if we are promoted later, these get served.
            self._buffered[request.key()] = request
            return
        if self.lease_manager is not None and self.lease_manager.intercept(request):
            return
        self._admit_ordered(request)

    def _admit_ordered(self, request: ClientRequest) -> None:
        if self.batcher is not None:
            if request.key() in self.batcher.pending_keys:
                return
            self.batcher.add(request)
            return
        self._commit_proposal(request)

    def _commit_proposal(self, proposal: Proposal) -> bool:
        """Execute one proposal and ship one StateUpdate covering it."""
        if self.role != "primary":
            return False  # demoted/never promoted while the batch waited
        self._next_seq += 1
        seq = self._next_seq
        self.commit_operation(seq, proposal_digest(proposal), proposal)
        # Ship the executed operation(s) to the backups.
        update = StateUpdate(seq, proposal, None, self.app.state_digest())
        self.broadcast(self.other_members(), update, update.wire_size())
        return True

    # ------------------------------------------------------------------
    # Backup path
    # ------------------------------------------------------------------
    def _handle_state_update(self, sender: str, message: StateUpdate) -> None:
        if self.role != "backup":
            return
        if sender != self.group.members[0] and sender not in self.group.members:
            return
        if self._detector is not None:
            self._detector.start()  # any primary traffic proves liveness
        if message.seq <= self._applied_seq:
            return
        dig = proposal_digest(message.request)
        self._applied_seq = message.seq
        self._next_seq = max(self._next_seq, message.seq)
        self.commit_operation(message.seq, dig, message.request)
        for key in proposal_keys(message.request):
            self._buffered.pop(key, None)
        ack = StateAck(message.seq, self.name)
        self.send(sender, ack, ack.wire_size())

    def _handle_heartbeat(self, sender: str, message: Heartbeat) -> None:
        if self.role == "backup" and self._detector is not None:
            self._detector.start()

    def _on_suspect(self) -> None:
        """Failure detector fired: promote to primary."""
        if self.role != "backup" or self.state.value == "crashed":
            return
        self.role = "primary"
        # Advance the view so replies steer clients to us: view % n must
        # select this replica's member index (otherwise every request
        # keeps timing out against the dead primary first).
        self.view = self.group.members.index(self.name)
        self.promotions += 1
        self.group.metrics.counter(f"{self.group.group_id}.promotions").inc()
        if self.lease_manager is not None:
            # Promotion is a view change: drop our held grants and quiesce
            # writes until any lease the old primary issued has expired.
            self.lease_manager.on_view_entered(self.view)
        if self.lease_table is not None:
            self.lease_table.clear()
        self._heartbeat_timer = PeriodicTimer(
            self.sim, self.config.heartbeat_period, self._send_heartbeat
        )
        # Serve everything clients retried at us while we were backup.
        for request in list(self._buffered.values()):
            self._handle_request(request.client, request)
        self._buffered.clear()

    # ------------------------------------------------------------------
    @property
    def state_sync_quorum(self) -> int:
        """Crash-only model: a single responder's state is trusted."""
        return 1

    def on_state_imported(self) -> None:
        self._applied_seq = max(self._applied_seq, self.last_executed)
        self._next_seq = max(self._next_seq, self._applied_seq)

    def shutdown(self) -> None:
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.stop()
            self._heartbeat_timer = None
        if self._detector is not None:
            self._detector.cancel()
            self._detector = None
        super().shutdown()

    def reset_protocol_state(self) -> None:
        self._buffered.clear()
        self._next_seq = max(self._next_seq, self._applied_seq, self.last_executed)
        if self.role == "backup" and self._detector is not None:
            self._detector.start()
