"""Replication protocol suite: PBFT, MinBFT, CFT, passive replication.

The paper positions active state-machine replication (Paxos/PBFT-style,
§II.A) and hybrid-assisted BFT (MinBFT-style, §III) as the mechanisms
on-chip resilience should reuse.  This package implements the four
protocol families the experiments compare:

* :mod:`~repro.bft.pbft`    — PBFT (Castro & Liskov): 3f+1 replicas,
  three-phase commit quorums, view change; tolerates f Byzantine.
* :mod:`~repro.bft.minbft`  — MinBFT (Veronese et al.): 2f+1 replicas,
  two-phase, USIG hybrid prevents equivocation; tolerates f Byzantine.
* :mod:`~repro.bft.cft`     — a leader/majority crash-tolerant protocol
  (Raft-normal-case analogue): 2f+1 replicas, tolerates f crashes only.
* :mod:`~repro.bft.passive` — primary/backup with a failure detector:
  1+1 replicas, cheap but with a visible failover gap (E8).

Authentication model: the NoC provides transport-authenticated channels
(the chip stamps the true sender on every envelope, standing in for
pairwise MACs; MAC compute/verify *time* is still charged through the
cost model).  Byzantine replicas can therefore lie in message fields and
equivocate per destination, but cannot impersonate others — and USIG
certificates are real HMACs they cannot forge.
"""

from repro.bft.app import CounterApp, KeyValueStore, StateMachine
from repro.bft.client import ClientConfig, ClientNode
from repro.bft.group import GroupConfig, ReplicaGroup, build_group
from repro.bft.messages import ClientReply, ClientRequest
from repro.bft.safety import SafetyRecorder

__all__ = [
    "ClientConfig",
    "ClientNode",
    "ClientReply",
    "ClientRequest",
    "CounterApp",
    "GroupConfig",
    "KeyValueStore",
    "ReplicaGroup",
    "SafetyRecorder",
    "StateMachine",
    "build_group",
]
