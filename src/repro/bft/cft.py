"""A leader/majority crash-fault-tolerant SMR protocol (Raft normal case).

The cheap end of the adaptation spectrum (§II.D): 2f+1 replicas, one
round trip (APPEND → majority ACK → COMMIT-NOTICE), no MACs charged, no
Byzantine defences.  Under crash faults it is safe and fast; under a
*compromised* leader it equivocates freely — exactly the failure mode the
threat-adaptive controller (E5) must detect and escape by switching to a
BFT protocol.

Leader failover: followers time out on pending requests, broadcast
ELECT(term+1) votes carrying their log tails; the new term's leader
(round-robin) merges tails from f+1 voters — majority intersection under
crash faults guarantees every committed entry reaches the new leader —
and re-replicates before serving new requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.bft.batching import BatchAccumulator, BatchConfig, resolve_batching
from repro.bft.leases import LeaseConfig, LeaseManager, LeaseTable, resolve_leases
from repro.bft.messages import (
    Append,
    AppendAck,
    ClientRequest,
    CommitNotice,
    LeaderElect,
    LeaderElectAck,
    Proposal,
    proposal_digest,
    proposal_keys,
    requests_of,
)
from repro.bft.replica import BaseReplica, GroupContext
from repro.sim.timers import Timeout
from repro.soc.chip import is_corrupted


@dataclass
class CftConfig:
    """Protocol knobs.

    ``batching`` enables request batching + a bounded in-flight window on
    the leader (see :mod:`repro.bft.batching`); None keeps the classic
    one-request-per-APPEND behaviour, byte for byte.
    """

    election_timeout: float = 40_000.0
    batching: Optional[BatchConfig] = None
    leases: Optional[LeaseConfig] = None


@dataclass(frozen=True)
class _LogEntry:
    """One appended (not necessarily committed) operation.

    ``request`` is a proposal: a bare ClientRequest, or a RequestBatch
    when the leader batches.
    """

    term: int
    seq: int
    digest: bytes
    request: Proposal


def required_replicas(f: int) -> int:
    """The CFT protocol needs 2f+1 replicas to tolerate f crash faults."""
    return 2 * f + 1


class CftReplica(BaseReplica):
    """One CFT replica.  ``term`` plays the role PBFT's view does."""

    def __init__(self, name: str, group: GroupContext, config: Optional[CftConfig] = None) -> None:
        super().__init__(name, group)
        self.config = config or CftConfig()
        expected = required_replicas(group.f)
        if group.n < expected:
            raise ValueError(f"CFT with f={group.f} needs n>={expected}, got {group.n}")
        self._log: Dict[int, _LogEntry] = {}
        self._acks: Dict[int, set] = {}
        self._next_seq = 0
        self._committed_seq = 0
        self._pending_requests: Dict[Tuple[str, int], ClientRequest] = {}
        self._elect_votes: Dict[int, Dict[str, LeaderElectAck]] = {}
        self._elect_sent: set = set()
        self._election_timer = None
        batching = resolve_batching(self.config.batching)
        if batching is not None:
            self.batcher = BatchAccumulator(self, batching, self._append_proposal)
        leases = resolve_leases(self.config.leases)
        if leases is not None:
            self.lease_table = LeaseTable(self, leases)
            self.lease_manager = LeaseManager(self, leases)

    # ``view`` (BaseReplica) is used as the term so primary_of() works.

    @property
    def majority(self) -> int:
        """Majority quorum: f+1."""
        return self.group.f + 1

    # ------------------------------------------------------------------
    # Timer plumbing
    # ------------------------------------------------------------------
    def _ensure_timer(self) -> Timeout:
        if self._election_timer is None:
            self._election_timer = Timeout(
                self.sim, self.config.election_timeout, self._on_election_timeout
            )
        return self._election_timer

    def _note_pending(self, request: ClientRequest) -> None:
        if request.key() in self._pending_requests or self.already_executed(request):
            return
        self._pending_requests[request.key()] = request
        timer = self._ensure_timer()
        if not timer.armed:
            timer.start()

    def _note_executed(self, request: ClientRequest) -> None:
        self._pending_requests.pop(request.key(), None)
        timer = self._ensure_timer()
        if self._pending_requests:
            timer.start()
        else:
            timer.cancel()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:
        if is_corrupted(message):
            return
        if self.handle_common(sender, message):
            return
        if isinstance(message, ClientRequest):
            self._handle_request(sender, message)
            return
        if sender not in self.group.members:
            return
        if isinstance(message, Append):
            self._handle_append(sender, message)
        elif isinstance(message, AppendAck):
            self._handle_ack(sender, message)
        elif isinstance(message, CommitNotice):
            self._handle_commit_notice(sender, message)
        elif isinstance(message, LeaderElect):
            self._handle_elect(sender, message)
        elif isinstance(message, LeaderElectAck):
            self._handle_elect_ack(sender, message)

    # ------------------------------------------------------------------
    # Normal case
    # ------------------------------------------------------------------
    def _handle_request(self, sender: str, request: ClientRequest) -> None:
        if self.already_executed(request):
            self.resend_cached_reply(request)
            return
        if self.is_primary:
            if self.lease_manager is not None:
                self._note_pending(request)  # parked writes survive failover
                if self.lease_manager.intercept(request):
                    return
            self._admit_ordered(request)
        else:
            self.send(self.primary, request, request.wire_size())
            self._note_pending(request)

    def _admit_ordered(self, request: ClientRequest) -> None:
        if self.batcher is not None:
            if self._already_replicating(request) or request.key() in self.batcher.pending_keys:
                return
            self.batcher.add(request)
        else:
            self._append(request)

    def _already_replicating(self, request: ClientRequest) -> bool:
        return any(
            e.seq > self._committed_seq and request.key() in proposal_keys(e.request)
            for e in self._log.values()
        )

    def _append(self, request: ClientRequest) -> None:
        if self._already_replicating(request):
            return
        self._append_proposal(request)

    def _append_proposal(self, proposal: Proposal) -> bool:
        """Replicate one proposal (a bare request, or a RequestBatch)."""
        if not self.is_primary:
            return False  # demoted while the batch was queued
        self._next_seq += 1
        seq = self._next_seq
        dig = proposal_digest(proposal)
        entry = _LogEntry(self.view, seq, dig, proposal)
        self._log[seq] = entry
        self._acks[seq] = {self.name}
        for request in requests_of(proposal):
            self._note_pending(request)
        message = Append(self.view, seq, proposal, self.name)
        self.broadcast(self.other_members(), message, message.wire_size())
        return True

    def _handle_append(self, sender: str, message: Append) -> None:
        if message.term < self.view:
            return
        if message.term > self.view:
            self._adopt_term(message.term)
        if sender != self.primary:
            return
        dig = proposal_digest(message.request)
        self._log[message.seq] = _LogEntry(message.term, message.seq, dig, message.request)
        self._next_seq = max(self._next_seq, message.seq)
        for request in requests_of(message.request):
            self._note_pending(request)
        ack = AppendAck(message.term, message.seq, self.name)
        self.send(sender, ack, ack.wire_size())

    def _handle_ack(self, sender: str, message: AppendAck) -> None:
        if message.term != self.view or not self.is_primary:
            return
        acks = self._acks.setdefault(message.seq, {self.name})
        acks.add(sender)
        if len(acks) >= self.majority and message.seq in self._log:
            self._commit_up_to(message.seq)
            notice = CommitNotice(self.view, self._committed_seq, self.name)
            self.broadcast(self.other_members(), notice, notice.wire_size())

    def _handle_commit_notice(self, sender: str, message: CommitNotice) -> None:
        if message.term != self.view or sender != self.primary:
            return
        self._commit_up_to(message.seq)

    def _commit_up_to(self, seq: int) -> None:
        while self._committed_seq < seq:
            next_seq = self._committed_seq + 1
            entry = self._log.get(next_seq)
            if entry is None:
                break  # hole: wait for the missing append
            self._committed_seq = next_seq
            self.commit_operation(entry.seq, entry.digest, entry.request)
            for request in requests_of(entry.request):
                self._note_executed(request)

    # ------------------------------------------------------------------
    # Leader failover
    # ------------------------------------------------------------------
    def _on_election_timeout(self) -> None:
        if not self._pending_requests:
            return
        target = self.view + 1
        if target in self._elect_sent:
            target = max(self._elect_sent) + 1
        self._elect_sent.add(target)
        message = LeaderElect(target, self.group.primary_of(target), self.last_executed)
        self.broadcast(self.other_members(), message, message.wire_size())
        self._record_elect_ack(
            self.name, LeaderElectAck(target, self.group.primary_of(target), self.name)
        )
        self._ensure_timer().start()
        self.group.metrics.counter(f"{self.group.group_id}.elections").inc()

    def _handle_elect(self, sender: str, message: LeaderElect) -> None:
        if message.term <= self.view:
            return
        ack = LeaderElectAck(message.term, message.candidate, self.name)
        candidate = message.candidate
        if candidate == self.name:
            self._record_elect_ack(sender, ack)
        else:
            self.send(candidate, ack, ack.wire_size())
        # Also push our uncommitted tail to the candidate so committed
        # entries survive the failover (majority intersection).
        for seq in sorted(self._log):
            if seq > self._committed_seq or seq > self.last_executed:
                entry = self._log[seq]
                fwd = Append(message.term, entry.seq, entry.request, candidate)
                if candidate != self.name:
                    self.send(candidate, fwd, fwd.wire_size())

    def _handle_elect_ack(self, sender: str, message: LeaderElectAck) -> None:
        if message.term <= self.view or message.candidate != self.name:
            return
        self._record_elect_ack(sender, message)

    def _record_elect_ack(self, sender: str, message: LeaderElectAck) -> None:
        if message.candidate != self.group.primary_of(message.term):
            return
        votes = self._elect_votes.setdefault(message.term, {})
        votes[sender] = message
        if (
            len(votes) >= self.majority
            and message.candidate == self.name
            and message.term > self.view
        ):
            self._become_leader(message.term)

    def _become_leader(self, term: int) -> None:
        self._adopt_term(term)
        # Re-replicate everything above the committed point, then pending.
        for seq in sorted(self._log):
            if seq > self._committed_seq:
                entry = self._log[seq]
                self._acks[seq] = {self.name}
                message = Append(term, seq, entry.request, self.name)
                self.broadcast(self.other_members(), message, message.wire_size())
        for request in list(self._pending_requests.values()):
            if self.already_executed(request):
                continue
            if self.lease_manager is not None and self.lease_manager.intercept(request):
                continue  # held by the new-term quiesce; released later
            self._admit_ordered(request)
        if self.batcher is not None:
            self.batcher.flush()

    def _adopt_term(self, term: int) -> None:
        self.view = term
        if self.batcher is not None:
            # Term changed: in-flight accounting is stale; pending
            # requests re-enter via re-batching or client retransmission.
            self.batcher.reset()
        if self.lease_manager is not None:
            # Old-term grants and revocations are void; quiesce writes for
            # one lease duration so leftover holders drain safely.
            self.lease_manager.on_view_entered(term)
        if self.lease_table is not None:
            self.lease_table.clear()  # grants are term-tagged anyway; hygiene
        for stale in [t for t in self._elect_votes if t <= term]:
            del self._elect_votes[stale]
        timer = self._ensure_timer()
        if self._pending_requests:
            timer.start()
        else:
            timer.cancel()

    # ------------------------------------------------------------------
    @property
    def state_sync_quorum(self) -> int:
        """Crash-only model: a single responder's state is trusted."""
        return 1

    def on_state_imported(self) -> None:
        self._committed_seq = max(self._committed_seq, self.last_executed)
        self._next_seq = max(self._next_seq, self._committed_seq)

    def reset_protocol_state(self) -> None:
        self._log = {s: e for s, e in self._log.items() if s <= self._committed_seq}
        self._acks.clear()
        self._pending_requests.clear()
        self._elect_votes.clear()
        self._elect_sent.clear()
        self._committed_seq = max(self._committed_seq, self.last_executed)
        self._next_seq = max(self._next_seq, self._committed_seq)
        if self._election_timer is not None:
            self._election_timer.cancel()
