"""Clients: the workload driver for every experiment.

Closed-loop by default (one request in flight, ``think_time`` between
completions); ``ClientConfig.max_outstanding > 1`` switches to open-loop
operation with a window of concurrently outstanding requests — the
workload shape that keeps a batching primary's batches full (P2 bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.bft.leases import keys_of, stable_key_hash
from repro.bft.messages import ClientReply, ClientRequest, ReadNack
from repro.metrics.traffic import TrafficSource
from repro.sim.timers import Timeout
from repro.soc.chip import is_corrupted
from repro.soc.node import Node

OpFactory = Callable[[int], Any]


def default_op_factory(i: int) -> Any:
    """A small KV workload: alternate puts and gets over 64 keys."""
    key = f"k{i % 64}"
    if i % 2 == 0:
        return ("put", key, i)
    return ("get", key)


@dataclass
class ClientConfig:
    """Client behaviour parameters.

    ``think_time`` is the gap between a completed operation and the next
    request; ``timeout`` triggers retransmission-to-all (which is also
    what lets backups detect a mute primary); ``max_requests`` bounds the
    run (None = until stopped).  ``read_only_predicate`` classifies
    operations for the read fast path: matching ops are broadcast
    unordered and complete on ``read_quorum`` matching replies, falling
    back to the ordered path on timeout.

    ``max_outstanding`` switches the client to **open-loop** operation:
    up to that many requests are kept in flight concurrently, each voted
    and completed independently (what keeps a batching primary's batches
    full).  The default of 1 is the classic closed loop, byte for byte.
    Keep it below the replicas' execution-ledger window (256) or replay
    detection of very old rids degrades.

    ``on_result`` (when set) observes every completion as ``(request,
    accepted_reply)`` — the hook the staleness-bound oracle in the lease
    tests and the P4 bench use.
    """

    think_time: float = 100.0
    timeout: float = 30_000.0
    max_requests: Optional[int] = None
    op_factory: OpFactory = default_op_factory
    backoff_factor: float = 2.0
    max_timeout: float = 480_000.0
    read_only_predicate: Optional[Callable[[Any], bool]] = None
    max_outstanding: int = 1
    on_result: Optional[Callable[[ClientRequest, ClientReply], None]] = None

    def __post_init__(self) -> None:
        if self.max_outstanding < 1:
            raise ValueError(f"max_outstanding must be >= 1, got {self.max_outstanding}")


class ClientNode(Node, TrafficSource):
    """A closed-loop client of one replica group.

    Sends each request to the believed primary; collects replies until
    ``reply_quorum`` *matching* ones arrive (f+1 for BFT — at least one
    is from a correct replica); retransmits to all replicas on timeout.

    Windowed measurement (``completions_in``/``latencies_in``/
    ``max_completion_gap``) comes from the shared
    :class:`~repro.metrics.traffic.TrafficSource` mixin.
    """

    def __init__(self, name: str, config: Optional[ClientConfig] = None) -> None:
        Node.__init__(self, name)
        TrafficSource.__init__(self)
        self.config = config or ClientConfig()
        self.replicas: List[str] = []
        self.reply_quorum = 1
        self._primary_hint = 0
        self._rid = 0
        self._inflight: Optional[ClientRequest] = None
        self._reply_votes: Dict[Any, set] = {}
        self._sent_at = 0.0
        self._timeout: Optional[Timeout] = None
        self._current_timeout = 0.0
        # Open-loop state (max_outstanding > 1): rid-keyed request window.
        self._outstanding: Dict[int, ClientRequest] = {}
        self._open_votes: Dict[int, Dict[Any, set]] = {}
        self._sent_times: Dict[int, float] = {}
        self.read_quorum = 1
        self.lease_reads = False
        self.fast_reads_completed = 0
        self.leased_reads_completed = 0
        self.read_fallbacks = 0
        self.lease_fallbacks = 0
        self.timeouts = 0
        self.running = False

    # ------------------------------------------------------------------
    def configure(
        self,
        replicas: List[str],
        reply_quorum: int,
        read_quorum: Optional[int] = None,
        lease_reads: bool = False,
    ) -> None:
        """Point the client at a replica group (callable mid-run when the
        adaptation layer switches protocols).

        ``lease_reads=True`` sends read-only ops as **leased reads**: one
        message to one key-chosen replica, accepting its lone leased
        reply; a :class:`ReadNack` drops the op to the quorum read path.
        """
        if reply_quorum < 1:
            raise ValueError("reply quorum must be >= 1")
        self.replicas = list(replicas)
        self.reply_quorum = reply_quorum
        self.read_quorum = read_quorum if read_quorum is not None else reply_quorum
        self.lease_reads = lease_reads
        self._primary_hint %= max(1, len(self.replicas))

    def start(self) -> None:
        """Begin the closed loop."""
        if not self.replicas:
            raise ValueError(f"client {self.name} has no replicas configured")
        self.running = True
        self._timeout = Timeout(self.sim, self.config.timeout, self._on_timeout)
        self._current_timeout = self.config.timeout
        if self._open_loop:
            self._fill_window()
        else:
            self._issue_next()

    def stop(self) -> None:
        """Stop issuing requests (the in-flight one is abandoned)."""
        self.running = False
        if self._timeout is not None:
            self._timeout.cancel()

    # ------------------------------------------------------------------
    @property
    def primary_name(self) -> str:
        """The replica currently believed to be primary."""
        return self.replicas[self._primary_hint % len(self.replicas)]

    @property
    def _open_loop(self) -> bool:
        return self.config.max_outstanding > 1

    def _lease_target(self, op: Any) -> Optional[str]:
        """The one replica a leased read goes to, chosen by key hash so
        load spreads across holders; None when keys are underivable."""
        keys = keys_of(op)
        if not keys:
            return None
        return self.replicas[stable_key_hash(keys[0]) % len(self.replicas)]

    def _build_request(self, op: Any) -> ClientRequest:
        predicate = self.config.read_only_predicate
        read_only = bool(predicate is not None and predicate(op))
        lease_read = bool(
            read_only and self.lease_reads and self._lease_target(op) is not None
        )
        request = ClientRequest(
            self.name, self._rid, op, read_only=read_only, lease_read=lease_read
        )
        self._rid += 1
        return request

    def _send_request(self, request: ClientRequest) -> None:
        if request.lease_read:
            target = self._lease_target(request.op)
            assert target is not None
            self.send(target, request, request.wire_size())
        elif request.read_only:
            # Fast path: ask everyone, wait for read_quorum matching.
            self.broadcast(self.replicas, request, request.wire_size())
        else:
            self.send(self.primary_name, request, request.wire_size())

    # ------------------------------------------------------------------
    # Open-loop path (max_outstanding > 1)
    # ------------------------------------------------------------------
    def _fill_window(self) -> None:
        if not self.running:
            return
        while len(self._outstanding) < self.config.max_outstanding:
            if self.config.max_requests is not None and self._rid >= self.config.max_requests:
                if not self._outstanding:
                    self.running = False
                break
            self._issue_one()
        assert self._timeout is not None
        if self._outstanding:
            if not self._timeout.armed:
                self._timeout.duration = self._current_timeout
                self._timeout.start()
        else:
            self._timeout.cancel()

    def _issue_one(self) -> None:
        request = self._build_request(self.config.op_factory(self._rid))
        self._outstanding[request.rid] = request
        self._open_votes[request.rid] = {}
        self._sent_times[request.rid] = self.sim.now
        self._send_request(request)

    def _complete_one(self, request: ClientRequest, reply: ClientReply) -> None:
        if self.config.on_result is not None:
            self.config.on_result(request, reply)
        self._outstanding.pop(request.rid, None)
        self._open_votes.pop(request.rid, None)
        sent = self._sent_times.pop(request.rid, self.sim.now)
        self.record_completion(self.sim.now, self.sim.now - sent)
        if self.replicas:
            self._primary_hint = reply.view % len(self.replicas)
        # Progress: reset backoff and give the rest a fresh window.
        self._current_timeout = self.config.timeout
        assert self._timeout is not None
        if self._outstanding:
            self._timeout.duration = self._current_timeout
            self._timeout.start()
        else:
            self._timeout.cancel()
        self.sim.schedule(self.config.think_time, self._fill_window)

    def _issue_next(self) -> None:
        if not self.running:
            return
        if self.config.max_requests is not None and self._rid >= self.config.max_requests:
            self.running = False
            return
        request = self._build_request(self.config.op_factory(self._rid))
        self._inflight = request
        self._reply_votes = {}
        self._sent_at = self.sim.now
        self._current_timeout = self.config.timeout
        self._send_request(request)
        assert self._timeout is not None
        self._timeout.duration = self._current_timeout
        self._timeout.start()

    def _on_timeout(self) -> None:
        if not self.running:
            return
        if self._open_loop:
            self._on_open_timeout()
            return
        if self._inflight is None:
            return
        self.timeouts += 1
        if self._inflight.read_only:
            # The fast path stalled (concurrent writes or faulty replies):
            # fall back to the ordered path with the same rid.
            import dataclasses

            self.read_fallbacks += 1
            self._inflight = dataclasses.replace(
                self._inflight, read_only=False, lease_read=False
            )
            self._reply_votes = {}
        # Suspect the primary; broadcast so every backup sees the request
        # (that is what arms their view-change timers).
        self.broadcast(self.replicas, self._inflight, self._inflight.wire_size())
        self._primary_hint += 1
        self._current_timeout = min(
            self._current_timeout * self.config.backoff_factor, self.config.max_timeout
        )
        assert self._timeout is not None
        self._timeout.duration = self._current_timeout
        self._timeout.start()

    def _on_open_timeout(self) -> None:
        if not self._outstanding:
            return
        self.timeouts += 1
        import dataclasses

        # Suspect the primary; rebroadcast the whole window so every
        # backup sees the stalled requests.
        for rid in sorted(self._outstanding):
            request = self._outstanding[rid]
            if request.read_only:
                self.read_fallbacks += 1
                request = dataclasses.replace(
                    request, read_only=False, lease_read=False
                )
                self._outstanding[rid] = request
                self._open_votes[rid] = {}
            self.broadcast(self.replicas, request, request.wire_size())
        self._primary_hint += 1
        self._current_timeout = min(
            self._current_timeout * self.config.backoff_factor, self.config.max_timeout
        )
        assert self._timeout is not None
        self._timeout.duration = self._current_timeout
        self._timeout.start()

    def on_message(self, sender: str, message: Any) -> None:
        if is_corrupted(message):
            return
        if isinstance(message, ReadNack):
            self._handle_read_nack(sender, message)
            return
        if not isinstance(message, ClientReply):
            return
        if self._open_loop:
            request = self._outstanding.get(message.rid)
            if request is None:
                return
            if sender != message.replica or sender not in self.replicas:
                return
            if request.lease_read and not message.leased:
                return  # a lone unleased reply must not complete a read
            votes = self._open_votes[message.rid].setdefault(message.match_key(), set())
            votes.add(sender)
            needed = self._needed_votes(request)
            if len(votes) >= needed:
                self._count_read(request)
                self._complete_one(request, message)
            return
        if self._inflight is None or message.rid != self._inflight.rid:
            return
        if sender != message.replica or sender not in self.replicas:
            return  # transport-authenticated sender must match the claim
        if self._inflight.lease_read and not message.leased:
            return
        votes = self._reply_votes.setdefault(message.match_key(), set())
        votes.add(sender)
        needed = self._needed_votes(self._inflight)
        if len(votes) >= needed:
            self._count_read(self._inflight)
            self._complete(message)

    def _needed_votes(self, request: ClientRequest) -> int:
        if request.lease_read:
            return 1  # the leaseholder answers alone; staleness is bounded
        return self.read_quorum if request.read_only else self.reply_quorum

    def _count_read(self, request: ClientRequest) -> None:
        if request.lease_read:
            self.leased_reads_completed += 1
        elif request.read_only:
            self.fast_reads_completed += 1

    def _handle_read_nack(self, sender: str, nack: ReadNack) -> None:
        """No valid lease at the target: drop to the f+1 quorum read."""
        if sender != nack.replica or sender not in self.replicas:
            return
        if nack.client != self.name:
            return
        import dataclasses

        if self._open_loop:
            request = self._outstanding.get(nack.rid)
            if request is None or not request.lease_read:
                return
            self.lease_fallbacks += 1
            request = dataclasses.replace(request, lease_read=False)
            self._outstanding[nack.rid] = request
            self._open_votes[nack.rid] = {}
            self.broadcast(self.replicas, request, request.wire_size())
            return
        if self._inflight is None or self._inflight.rid != nack.rid:
            return
        if not self._inflight.lease_read:
            return
        self.lease_fallbacks += 1
        self._inflight = dataclasses.replace(self._inflight, lease_read=False)
        self._reply_votes = {}
        self.broadcast(self.replicas, self._inflight, self._inflight.wire_size())

    def _complete(self, reply: ClientReply) -> None:
        assert self._timeout is not None
        if self.config.on_result is not None and self._inflight is not None:
            self.config.on_result(self._inflight, reply)
        self._timeout.cancel()
        self._inflight = None
        self.record_completion(self.sim.now, self.sim.now - self._sent_at)
        # Adopt the replier's view for primary targeting.
        if self.replicas:
            self._primary_hint = reply.view % len(self.replicas)
        self.sim.schedule(self.config.think_time, self._issue_next)
