"""Clients: the workload driver for every experiment.

Closed-loop by default (one request in flight, ``think_time`` between
completions); ``ClientConfig.max_outstanding > 1`` switches to open-loop
operation with a window of concurrently outstanding requests — the
workload shape that keeps a batching primary's batches full (P2 bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.bft.messages import ClientReply, ClientRequest
from repro.metrics.traffic import TrafficSource
from repro.sim.timers import Timeout
from repro.soc.chip import is_corrupted
from repro.soc.node import Node

OpFactory = Callable[[int], Any]


def default_op_factory(i: int) -> Any:
    """A small KV workload: alternate puts and gets over 64 keys."""
    key = f"k{i % 64}"
    if i % 2 == 0:
        return ("put", key, i)
    return ("get", key)


@dataclass
class ClientConfig:
    """Client behaviour parameters.

    ``think_time`` is the gap between a completed operation and the next
    request; ``timeout`` triggers retransmission-to-all (which is also
    what lets backups detect a mute primary); ``max_requests`` bounds the
    run (None = until stopped).  ``read_only_predicate`` classifies
    operations for the read fast path: matching ops are broadcast
    unordered and complete on ``read_quorum`` matching replies, falling
    back to the ordered path on timeout.

    ``max_outstanding`` switches the client to **open-loop** operation:
    up to that many requests are kept in flight concurrently, each voted
    and completed independently (what keeps a batching primary's batches
    full).  The default of 1 is the classic closed loop, byte for byte.
    Keep it below the replicas' execution-ledger window (256) or replay
    detection of very old rids degrades.
    """

    think_time: float = 100.0
    timeout: float = 30_000.0
    max_requests: Optional[int] = None
    op_factory: OpFactory = default_op_factory
    backoff_factor: float = 2.0
    max_timeout: float = 480_000.0
    read_only_predicate: Optional[Callable[[Any], bool]] = None
    max_outstanding: int = 1

    def __post_init__(self) -> None:
        if self.max_outstanding < 1:
            raise ValueError(f"max_outstanding must be >= 1, got {self.max_outstanding}")


class ClientNode(Node, TrafficSource):
    """A closed-loop client of one replica group.

    Sends each request to the believed primary; collects replies until
    ``reply_quorum`` *matching* ones arrive (f+1 for BFT — at least one
    is from a correct replica); retransmits to all replicas on timeout.

    Windowed measurement (``completions_in``/``latencies_in``/
    ``max_completion_gap``) comes from the shared
    :class:`~repro.metrics.traffic.TrafficSource` mixin.
    """

    def __init__(self, name: str, config: Optional[ClientConfig] = None) -> None:
        Node.__init__(self, name)
        TrafficSource.__init__(self)
        self.config = config or ClientConfig()
        self.replicas: List[str] = []
        self.reply_quorum = 1
        self._primary_hint = 0
        self._rid = 0
        self._inflight: Optional[ClientRequest] = None
        self._reply_votes: Dict[Any, set] = {}
        self._sent_at = 0.0
        self._timeout: Optional[Timeout] = None
        self._current_timeout = 0.0
        # Open-loop state (max_outstanding > 1): rid-keyed request window.
        self._outstanding: Dict[int, ClientRequest] = {}
        self._open_votes: Dict[int, Dict[Any, set]] = {}
        self._sent_times: Dict[int, float] = {}
        self.read_quorum = 1
        self.fast_reads_completed = 0
        self.read_fallbacks = 0
        self.timeouts = 0
        self.running = False

    # ------------------------------------------------------------------
    def configure(
        self, replicas: List[str], reply_quorum: int, read_quorum: Optional[int] = None
    ) -> None:
        """Point the client at a replica group (callable mid-run when the
        adaptation layer switches protocols)."""
        if reply_quorum < 1:
            raise ValueError("reply quorum must be >= 1")
        self.replicas = list(replicas)
        self.reply_quorum = reply_quorum
        self.read_quorum = read_quorum if read_quorum is not None else reply_quorum
        self._primary_hint %= max(1, len(self.replicas))

    def start(self) -> None:
        """Begin the closed loop."""
        if not self.replicas:
            raise ValueError(f"client {self.name} has no replicas configured")
        self.running = True
        self._timeout = Timeout(self.sim, self.config.timeout, self._on_timeout)
        self._current_timeout = self.config.timeout
        if self._open_loop:
            self._fill_window()
        else:
            self._issue_next()

    def stop(self) -> None:
        """Stop issuing requests (the in-flight one is abandoned)."""
        self.running = False
        if self._timeout is not None:
            self._timeout.cancel()

    # ------------------------------------------------------------------
    @property
    def primary_name(self) -> str:
        """The replica currently believed to be primary."""
        return self.replicas[self._primary_hint % len(self.replicas)]

    @property
    def _open_loop(self) -> bool:
        return self.config.max_outstanding > 1

    # ------------------------------------------------------------------
    # Open-loop path (max_outstanding > 1)
    # ------------------------------------------------------------------
    def _fill_window(self) -> None:
        if not self.running:
            return
        while len(self._outstanding) < self.config.max_outstanding:
            if self.config.max_requests is not None and self._rid >= self.config.max_requests:
                if not self._outstanding:
                    self.running = False
                break
            self._issue_one()
        assert self._timeout is not None
        if self._outstanding:
            if not self._timeout.armed:
                self._timeout.duration = self._current_timeout
                self._timeout.start()
        else:
            self._timeout.cancel()

    def _issue_one(self) -> None:
        op = self.config.op_factory(self._rid)
        predicate = self.config.read_only_predicate
        read_only = bool(predicate is not None and predicate(op))
        request = ClientRequest(self.name, self._rid, op, read_only=read_only)
        self._rid += 1
        self._outstanding[request.rid] = request
        self._open_votes[request.rid] = {}
        self._sent_times[request.rid] = self.sim.now
        if read_only:
            self.broadcast(self.replicas, request, request.wire_size())
        else:
            self.send(self.primary_name, request, request.wire_size())

    def _complete_one(self, request: ClientRequest, reply: ClientReply) -> None:
        self._outstanding.pop(request.rid, None)
        self._open_votes.pop(request.rid, None)
        sent = self._sent_times.pop(request.rid, self.sim.now)
        self.record_completion(self.sim.now, self.sim.now - sent)
        if self.replicas:
            self._primary_hint = reply.view % len(self.replicas)
        # Progress: reset backoff and give the rest a fresh window.
        self._current_timeout = self.config.timeout
        assert self._timeout is not None
        if self._outstanding:
            self._timeout.duration = self._current_timeout
            self._timeout.start()
        else:
            self._timeout.cancel()
        self.sim.schedule(self.config.think_time, self._fill_window)

    def _issue_next(self) -> None:
        if not self.running:
            return
        if self.config.max_requests is not None and self._rid >= self.config.max_requests:
            self.running = False
            return
        op = self.config.op_factory(self._rid)
        predicate = self.config.read_only_predicate
        read_only = bool(predicate is not None and predicate(op))
        request = ClientRequest(self.name, self._rid, op, read_only=read_only)
        self._rid += 1
        self._inflight = request
        self._reply_votes = {}
        self._sent_at = self.sim.now
        self._current_timeout = self.config.timeout
        if read_only:
            # Fast path: ask everyone, wait for read_quorum matching.
            self.broadcast(self.replicas, request, request.wire_size())
        else:
            self.send(self.primary_name, request, request.wire_size())
        assert self._timeout is not None
        self._timeout.duration = self._current_timeout
        self._timeout.start()

    def _on_timeout(self) -> None:
        if not self.running:
            return
        if self._open_loop:
            self._on_open_timeout()
            return
        if self._inflight is None:
            return
        self.timeouts += 1
        if self._inflight.read_only:
            # The fast path stalled (concurrent writes or faulty replies):
            # fall back to the ordered path with the same rid.
            import dataclasses

            self.read_fallbacks += 1
            self._inflight = dataclasses.replace(self._inflight, read_only=False)
            self._reply_votes = {}
        # Suspect the primary; broadcast so every backup sees the request
        # (that is what arms their view-change timers).
        self.broadcast(self.replicas, self._inflight, self._inflight.wire_size())
        self._primary_hint += 1
        self._current_timeout = min(
            self._current_timeout * self.config.backoff_factor, self.config.max_timeout
        )
        assert self._timeout is not None
        self._timeout.duration = self._current_timeout
        self._timeout.start()

    def _on_open_timeout(self) -> None:
        if not self._outstanding:
            return
        self.timeouts += 1
        import dataclasses

        # Suspect the primary; rebroadcast the whole window so every
        # backup sees the stalled requests.
        for rid in sorted(self._outstanding):
            request = self._outstanding[rid]
            if request.read_only:
                self.read_fallbacks += 1
                request = dataclasses.replace(request, read_only=False)
                self._outstanding[rid] = request
                self._open_votes[rid] = {}
            self.broadcast(self.replicas, request, request.wire_size())
        self._primary_hint += 1
        self._current_timeout = min(
            self._current_timeout * self.config.backoff_factor, self.config.max_timeout
        )
        assert self._timeout is not None
        self._timeout.duration = self._current_timeout
        self._timeout.start()

    def on_message(self, sender: str, message: Any) -> None:
        if is_corrupted(message):
            return
        if not isinstance(message, ClientReply):
            return
        if self._open_loop:
            request = self._outstanding.get(message.rid)
            if request is None:
                return
            if sender != message.replica or sender not in self.replicas:
                return
            votes = self._open_votes[message.rid].setdefault(message.match_key(), set())
            votes.add(sender)
            needed = self.read_quorum if request.read_only else self.reply_quorum
            if len(votes) >= needed:
                if request.read_only:
                    self.fast_reads_completed += 1
                self._complete_one(request, message)
            return
        if self._inflight is None or message.rid != self._inflight.rid:
            return
        if sender != message.replica or sender not in self.replicas:
            return  # transport-authenticated sender must match the claim
        votes = self._reply_votes.setdefault(message.match_key(), set())
        votes.add(sender)
        needed = self.read_quorum if self._inflight.read_only else self.reply_quorum
        if len(votes) >= needed:
            if self._inflight.read_only:
                self.fast_reads_completed += 1
            self._complete(message)

    def _complete(self, reply: ClientReply) -> None:
        assert self._timeout is not None
        self._timeout.cancel()
        self._inflight = None
        self.record_completion(self.sim.now, self.sim.now - self._sent_at)
        # Adopt the replier's view for primary targeting.
        if self.replicas:
            self._primary_hint = reply.view % len(self.replicas)
        self.sim.schedule(self.config.think_time, self._issue_next)
