"""Replica-group construction and live protocol switching.

:func:`build_group` is the high-level entry point experiments use: pick a
protocol family and a fault bound f, and get a placed, running replica
group plus the client-side parameters (member list, reply quorum).

:meth:`ReplicaGroup.switch_protocol` implements the adaptation mechanism
of §II.D: quiesce, snapshot the most advanced correct replica, rebuild the
replicas in the new family on the *same tiles with the same names* (so
clients and key material survive), import the snapshot everywhere, and
re-point the clients.  The switch costs real simulated time (state
transfer + protocol restart), which E5 accounts against the adaptation
strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Type

from repro.bft.app import KeyValueStore, StateMachine
from repro.bft.cft import CftConfig, CftReplica
from repro.bft.cft import required_replicas as cft_n
from repro.bft.client import ClientNode
from repro.bft.minbft import MinBftConfig, MinBftReplica
from repro.bft.minbft import required_replicas as minbft_n
from repro.bft.passive import PassiveConfig, PassiveReplica
from repro.bft.passive import required_replicas as passive_n
from repro.bft.pbft import PbftConfig, PbftReplica
from repro.bft.pbft import required_replicas as pbft_n
from repro.bft.replica import BaseReplica, GroupContext
from repro.bft.safety import SafetyRecorder
from repro.crypto.keys import KeyStore
from repro.noc.topology import Coord
from repro.soc.chip import Chip


@dataclass(frozen=True)
class _Family:
    """Static description of one protocol family."""

    replica_cls: Type[BaseReplica]
    replicas_for: Callable[[int], int]
    reply_quorum_for: Callable[[int], int]
    byzantine_safe: bool
    config_cls: Type[Any]


FAMILIES: Dict[str, _Family] = {
    "pbft": _Family(PbftReplica, pbft_n, lambda f: f + 1, True, PbftConfig),
    "minbft": _Family(MinBftReplica, minbft_n, lambda f: f + 1, True, MinBftConfig),
    "cft": _Family(CftReplica, cft_n, lambda f: 1, False, CftConfig),
    "passive": _Family(PassiveReplica, passive_n, lambda f: 1, False, PassiveConfig),
}


def protocol_config_for(
    protocol: str,
    batching: Optional[Any] = None,
    leases: Optional[Any] = None,
    **kwargs: Any,
):
    """Build the protocol family's config object, with optional batching
    and leases.

    A convenience for experiments/campaigns that sweep batching or lease
    knobs without caring which concrete config class each family uses::

        cfg = protocol_config_for("minbft", batching=BatchConfig(batch_size=8))
        cfg = protocol_config_for("pbft", leases=LeaseConfig(duration=20_000.0))
    """
    family = FAMILIES.get(protocol)
    if family is None:
        raise ValueError(f"unknown protocol {protocol!r}; expected one of {sorted(FAMILIES)}")
    if batching is not None:
        kwargs["batching"] = batching
    if leases is not None:
        kwargs["leases"] = leases
    return family.config_cls(**kwargs)


@dataclass
class GroupConfig:
    """Parameters for building a replica group."""

    protocol: str = "minbft"
    f: int = 1
    group_id: str = "g0"
    app_factory: Callable[[], StateMachine] = KeyValueStore
    placement: Optional[List[Coord]] = None
    protocol_config: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.protocol not in FAMILIES:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; expected one of {sorted(FAMILIES)}"
            )
        if self.f < 0:
            raise ValueError("f must be non-negative")


class ReplicaGroup:
    """A placed, running group of replicas plus its shared context."""

    def __init__(
        self,
        chip: Chip,
        config: GroupConfig,
        keystore: Optional[KeyStore] = None,
        safety: Optional[SafetyRecorder] = None,
    ) -> None:
        self.chip = chip
        self.config = config
        self.keystore = keystore or KeyStore()
        self.safety = safety or SafetyRecorder()
        self.protocol = config.protocol
        family = FAMILIES[config.protocol]
        n = family.replicas_for(config.f)
        member_names = [f"{config.group_id}-r{i}" for i in range(n)]
        placement = config.placement or chip.free_tiles()[:n]
        if len(placement) < n:
            raise ValueError(f"need {n} tiles for {config.protocol} f={config.f}")
        self.placement: Dict[str, Coord] = dict(zip(member_names, placement))
        self.context = GroupContext(
            group_id=config.group_id,
            members=member_names,
            f=config.f,
            app_factory=config.app_factory,
            keystore=self.keystore,
            safety=self.safety,
            metrics=chip.metrics,
        )
        self.replicas: Dict[str, BaseReplica] = {}
        self.clients: List[ClientNode] = []
        self._build_replicas(family, config.protocol_config)

    # ------------------------------------------------------------------
    def _build_replicas(self, family: _Family, protocol_config: Any) -> None:
        for name in self.context.members:
            if protocol_config is not None:
                replica = family.replica_cls(name, self.context, protocol_config)
            else:
                replica = family.replica_cls(name, self.context)
            self.chip.place_node(replica, self.placement[name])
            self.replicas[name] = replica
        self._start_replicas()

    def _start_replicas(self) -> None:
        for replica in self.replicas.values():
            start = getattr(replica, "start", None)
            if callable(start):
                start()

    # ------------------------------------------------------------------
    @property
    def members(self) -> List[str]:
        """Ordered member names."""
        return list(self.context.members)

    @property
    def f(self) -> int:
        """Current fault bound."""
        return self.context.f

    @property
    def reply_quorum(self) -> int:
        """Matching replies a client needs with the current protocol."""
        return FAMILIES[self.protocol].reply_quorum_for(self.context.f)

    def replica(self, name: str) -> BaseReplica:
        """Look up a replica by name."""
        return self.replicas[name]

    def correct_replicas(self) -> List[BaseReplica]:
        """Replicas that are neither crashed nor compromised."""
        return [r for r in self.replicas.values() if r.is_correct]

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    @property
    def read_quorum(self) -> int:
        """Matching replies a fast-path read needs: f+1 (>= 1 correct)."""
        return self.context.f + 1 if FAMILIES[self.protocol].byzantine_safe else 1

    @property
    def leases_enabled(self) -> bool:
        """True when the current replicas run with read leases."""
        return any(r.lease_manager is not None for r in self.replicas.values())

    def attach_client(self, client: ClientNode, coord: Optional[Coord] = None) -> None:
        """Place (if needed) and configure a client for this group."""
        if client.chip is None:
            target = coord or self.chip.free_tiles()[0]
            self.chip.place_node(client, target)
        client.configure(
            self.members,
            self.reply_quorum,
            self.read_quorum,
            lease_reads=self.leases_enabled,
        )
        self.clients.append(client)

    # ------------------------------------------------------------------
    # Leases (detector / rejuvenation integration)
    # ------------------------------------------------------------------
    def revoke_leases(self, name: str) -> None:
        """Revoke ``name``'s read leases everywhere and stop re-granting.

        Called before a replica is rejuvenated or acted on as a suspect;
        a no-op when leases are off.  Safe on every member: only the
        acting primary's manager has grants to revoke.
        """
        for replica in self.replicas.values():
            if replica.lease_manager is not None:
                replica.lease_manager.revoke_holder(name)

    def readmit_leases(self, name: str) -> None:
        """Allow lease grants to ``name`` again (it healed)."""
        for replica in self.replicas.values():
            if replica.lease_manager is not None:
                replica.lease_manager.readmit_holder(name)

    # ------------------------------------------------------------------
    # Fault helpers (used by experiments)
    # ------------------------------------------------------------------
    def crash(self, name: str) -> None:
        """Crash one replica."""
        self.replicas[name].crash()

    def compromise(self, name: str, strategy=None) -> None:
        """Compromise one replica, optionally installing a strategy."""
        if strategy is not None:
            strategy.activate(self.replicas[name])
        else:
            self.replicas[name].compromise()

    # ------------------------------------------------------------------
    # Protocol switching (adaptation, §II.D)
    # ------------------------------------------------------------------
    def switch_protocol(
        self, protocol: str, f: Optional[int] = None, protocol_config: Any = None
    ) -> float:
        """Swap the group to a different protocol family in place.

        Returns the simulated time charged for the switch (state transfer
        and restart).  The group keeps its id; replica *names* change only
        if the new family needs a different group size (extras are spawned
        on free tiles / surplus members are despawned).
        """
        family = FAMILIES[protocol]
        new_f = self.config.f if f is None else f
        n = family.replicas_for(new_f)
        donor = self._most_advanced_state()

        # Tear down the old replicas (keep their tiles reserved in order).
        # shutdown() deactivates the old instances so no zombie timers or
        # in-flight callbacks keep acting under the reused names.
        old_coords = [self.placement[name] for name in self.context.members]
        for name in list(self.replicas):
            self.replicas[name].shutdown()
            self.chip.remove_node(name)
        self.replicas.clear()

        member_names = [f"{self.config.group_id}-r{i}" for i in range(n)]
        coords = list(old_coords[:n])
        if len(coords) < n:
            extra = [c for c in self.chip.free_tiles() if c not in coords]
            coords.extend(extra[: n - len(coords)])
        if len(coords) < n:
            raise ValueError(f"not enough tiles to switch to {protocol} f={new_f}")

        self.protocol = protocol
        self.config.protocol = protocol
        self.config.f = new_f
        self.placement = dict(zip(member_names, coords))
        self.context.members[:] = member_names
        self.context.f = new_f

        for name in member_names:
            if protocol_config is not None:
                replica = family.replica_cls(name, self.context, protocol_config)
            else:
                replica = family.replica_cls(name, self.context)
            if donor is not None:
                replica.import_state(donor)
            self.chip.place_node(replica, self.placement[name])
            self.replicas[name] = replica
        self._start_replicas()

        for client in self.clients:
            client.configure(
                self.members,
                self.reply_quorum,
                self.read_quorum,
                lease_reads=self.leases_enabled,
            )

        # Charge switch time: a state-transfer round plus restart slack,
        # scaled by history length (executed sequence numbers — the
        # executed-request ledger itself is bounded per client).
        switch_cost = 2_000.0 + 50.0 * (donor["last_executed"] if donor else 0)
        self.chip.metrics.counter(f"{self.config.group_id}.protocol_switches").inc()
        return switch_cost

    def _most_advanced_state(self) -> Optional[Dict[str, Any]]:
        best: Optional[BaseReplica] = None
        for replica in self.replicas.values():
            if not replica.is_correct:
                continue
            if best is None or replica.last_executed > best.last_executed:
                best = replica
        return best.export_state() if best is not None else None


def build_group(
    chip: Chip,
    config: Optional[GroupConfig] = None,
    keystore: Optional[KeyStore] = None,
    safety: Optional[SafetyRecorder] = None,
) -> ReplicaGroup:
    """Build, place, and start a replica group on a chip."""
    return ReplicaGroup(chip, config or GroupConfig(), keystore=keystore, safety=safety)
