"""Admission control for aggregated client populations.

A population can offer orders of magnitude more demand than a degraded
shard can absorb.  Retrying that demand into a dead or struggling region
is exactly the retransmit storm the shard directory's fast-fail exists
to avoid — so the mesoscale engine sheds at the *source* instead: before
an operation is ever submitted, the :class:`AdmissionController` checks
the health of the shards the operation would touch and either admits it
or returns a shed reason.

Two signals drive the decision, both re-using the per-shard machinery
the system already maintains (nothing here probes replicas directly):

* the :class:`~repro.shard.directory.ShardDirectory` degraded flag — a
  failed-over shard sheds deterministically (``shed_degraded``);
* the shard's :class:`~repro.core.severity.SeverityDetector` threat
  level — ELEVATED and CRITICAL shards admit only a configured fraction
  of demand, sampled from a seeded stream so runs stay byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.core.severity import ThreatLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.severity import SeverityDetector
    from repro.shard.directory import ShardDirectory
    from repro.sim.rng import RngStream

#: Shed reasons the controller can return (populations also use
#: ``queue_full``, which is decided by backlog accounting, not health).
SHED_DEGRADED = "degraded"
SHED_THROTTLED = "throttled"


@dataclass(frozen=True)
class AdmissionConfig:
    """Admit-fraction policy keyed by shard health.

    ``elevated_admit`` / ``critical_admit`` are the probabilities that an
    operation touching a shard at that threat level is admitted; 1.0
    disables throttling for the level.  ``shed_degraded`` sheds (rather
    than fast-fails) traffic for shards the directory marked degraded —
    shed demand never reaches the router, so it shows up in shed
    counters instead of failure counters.
    """

    shed_degraded: bool = True
    elevated_admit: float = 1.0
    critical_admit: float = 0.5

    def __post_init__(self) -> None:
        for label, frac in (
            ("elevated_admit", self.elevated_admit),
            ("critical_admit", self.critical_admit),
        ):
            if not 0.0 <= frac <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {frac}")

    def admit_fraction(self, level: ThreatLevel) -> float:
        """The admitted fraction of demand at a given threat level."""
        if level >= ThreatLevel.CRITICAL:
            return self.critical_admit
        if level >= ThreatLevel.ELEVATED:
            return self.elevated_admit
        return 1.0


class AdmissionController:
    """Per-population gate over the shards an operation would touch."""

    def __init__(
        self,
        directory: "ShardDirectory",
        detectors: Dict[str, "SeverityDetector"],
        config: Optional[AdmissionConfig] = None,
        rng: Optional["RngStream"] = None,
    ) -> None:
        self.directory = directory
        self.detectors = detectors
        self.config = config or AdmissionConfig()
        self.rng = rng
        self.admitted = 0
        self.shed_by_reason: Dict[str, int] = {}

    def decide(self, shard_ids: Sequence[str]) -> Optional[str]:
        """Admit (``None``) or shed (reason string) one operation.

        Multi-shard operations (``mget`` fan-out) are judged by their
        *worst* shard — a ticket needs every fragment, so one degraded
        owner dooms the whole operation anyway.
        """
        level = ThreatLevel.LOW
        for shard_id in shard_ids:
            if self.config.shed_degraded and self.directory.is_degraded(shard_id):
                return self._shed(SHED_DEGRADED)
            detector = self.detectors.get(shard_id)
            if detector is not None and detector.level > level:
                level = ThreatLevel(detector.level)
        fraction = self.config.admit_fraction(level)
        if fraction < 1.0:
            if self.rng is None:
                raise ValueError(
                    "admission throttling needs an RngStream (rng=None)"
                )
            if not self.rng.bernoulli(fraction):
                return self._shed(SHED_THROTTLED)
        self.admitted += 1
        return None

    def _shed(self, reason: str) -> str:
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        return reason

    @property
    def shed(self) -> int:
        """Total operations shed across all reasons."""
        return sum(self.shed_by_reason.values())
