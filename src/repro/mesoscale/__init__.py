"""Mesoscale workload engine: aggregated client populations.

Per-client drivers stop scaling around 10^2 clients — every client is an
object, a timer chain, and a slice of the event heap.  This package
models client *populations* instead: one :class:`ClientPopulation`
stands in for 10^5–10^6 clients, sampling aggregate demand per tick from
an arrival process (:mod:`repro.workloads.arrivals`) and injecting it
through a :class:`~repro.shard.router.ShardRouter` front end, with
:class:`AdmissionController` shedding demand for degraded or threatened
shards before it ever touches the NoC.

Attach populations to a sharded system with
:meth:`repro.shard.manager.ShardedSystem.attach_population`; the C4
bench (``benchmarks/bench_c4_mesoscale.py``) and the ``mesoscale``
campaign runner are the reference drivers.
"""

from repro.mesoscale.admission import (
    SHED_DEGRADED,
    SHED_THROTTLED,
    AdmissionConfig,
    AdmissionController,
)
from repro.mesoscale.population import (
    SHED_QUEUE_FULL,
    ClientPopulation,
    PopulationConfig,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ClientPopulation",
    "PopulationConfig",
    "SHED_DEGRADED",
    "SHED_QUEUE_FULL",
    "SHED_THROTTLED",
]
