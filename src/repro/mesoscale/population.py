"""`ClientPopulation`: 10^5–10^6 modeled clients in one object.

The per-client drivers (:class:`~repro.bft.client.ClientNode`,
``RouterClient``) cost one Python object plus a timer chain per client —
fine for tens of clients, hopeless for the population sizes real edge
services face.  A :class:`ClientPopulation` replaces them with an
*aggregated* model: one object, one periodic tick, one arrival-process
draw answering "how many operations did my N clients generate this
tick?".  Memory is O(populations + completions), never O(clients).

Two operating modes share one completion path:

* ``mode="open"`` — the aggregated engine.  Each tick samples demand
  from the workload's :class:`~repro.workloads.arrivals.ArrivalProcess`,
  queues it (shedding ``queue_full`` overflow beyond ``queue_limit``),
  and drains the queue through the router subject to ``max_inflight``
  and the optional :class:`~repro.mesoscale.admission.AdmissionController`
  (which sheds ``degraded``/``throttled`` demand before it touches the
  NoC).  Offered load is conserved exactly:
  ``offered == admitted + shed + backlog`` at every instant.
* ``mode="closed"`` — the compatibility path: ``n_clients`` independent
  think-time loops, one operation in flight each, exactly the event
  pattern of the old per-client ``RouterClient`` (which is now a thin
  ``n_clients=1`` closed population).  Cost is O(n_clients); use it for
  small tenant counts and exact back-compat, not for mesoscale runs.

Demand sampling draws only from ``sim.rng.stream("mesoscale.<name>")``,
so populations are deterministic per seed and campaign trials inherit
byte-stability through
:func:`~repro.sim.rng.derive_trial_seed`-derived seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.mesoscale.admission import AdmissionController
from repro.metrics.traffic import TrafficSource
from repro.sim.timers import PeriodicTimer
from repro.workloads.workload import (
    KVWorkload,
    Workload,
    as_workload,
    read_only_predicate_of,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.shard.router import ShardRouter, TicketResult
    from repro.sim.rng import RngStream

SHED_QUEUE_FULL = "queue_full"


@dataclass
class PopulationConfig:
    """Shape of one aggregated client population.

    ``workload`` accepts a :class:`~repro.workloads.workload.Workload`,
    a bare legacy op-factory callable (deprecated — warns via
    :func:`~repro.workloads.workload.as_workload`), or ``None`` for the
    standard KV mix.  Open mode requires the workload to carry an
    arrival process; ``think_time``/``max_requests`` apply to closed
    mode only.
    """

    n_clients: int = 100_000
    workload: Any = None
    mode: str = "open"
    tick: float = 100.0
    max_inflight: int = 256
    queue_limit: int = 4096
    think_time: float = 100.0
    max_requests: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_clients < 0:
            raise ValueError(f"n_clients must be >= 0, got {self.n_clients}")
        if self.mode not in ("open", "closed"):
            raise ValueError(f"mode must be 'open' or 'closed', got {self.mode!r}")
        if self.tick <= 0:
            raise ValueError(f"tick must be positive, got {self.tick}")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if self.think_time < 0:
            raise ValueError("think_time must be >= 0")


class ClientPopulation(TrafficSource):
    """An aggregated population of clients driving one shard router."""

    def __init__(
        self,
        name: str,
        router: "ShardRouter",
        config: Optional[PopulationConfig] = None,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        TrafficSource.__init__(self)
        self.name = name
        self.router = router
        self.config = config or PopulationConfig()
        self.admission = admission
        cfg = self.config
        if cfg.workload is None:
            self.workload: Workload = KVWorkload()
        else:
            self.workload = as_workload(cfg.workload)
        if cfg.mode == "open" and self.workload.arrivals is None:
            raise ValueError(
                f"population {name!r} is open-loop but workload "
                f"{self.workload.name!r} has no arrival process; set "
                f"workload.arrivals (e.g. PoissonArrivals) or use mode='closed'"
            )
        self.running = False
        # Demand-conservation counters: offered == admitted + shed + backlog.
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.shed_by_reason: Dict[str, int] = {}
        self.failures = 0
        self.backlog = 0
        self.inflight = 0
        #: In-flight operations on the *ordered* path.  Leased local
        #: reads never enter the ordered log, so they are admitted past
        #: ``max_inflight`` (which exists to bound ordered-log pressure).
        self.ordered_inflight = 0
        self._read_predicate = read_only_predicate_of(self.workload)
        self._issued = 0
        self._draining = False
        self._timer: Optional[PeriodicTimer] = None
        self._stream: Optional["RngStream"] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sim(self):
        return self.router.sim

    @property
    def modeled_clients(self) -> int:
        """How many clients this one object stands in for."""
        return self.config.n_clients

    def state_footprint(self) -> Dict[str, int]:
        """Sizes of every internal collection.

        The mesoscale memory claim, checkable: every entry here scales
        with completions or shed reasons, none with ``n_clients``.
        """
        return {
            "latencies": len(self.latencies),
            "completion_times": len(self._completion_times),
            "shed_reasons": len(self.shed_by_reason),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin generating demand (call after the router is placed)."""
        self.running = True
        if self.config.mode == "closed":
            for _ in range(self.config.n_clients):
                if not self.running:
                    break
                self._issue_closed()
            return
        self._stream = self.sim.rng.stream(f"mesoscale.{self.name}")
        self._timer = PeriodicTimer(self.sim, self.config.tick, self._tick)

    def stop(self) -> None:
        """Stop generating demand; in-flight operations still resolve."""
        self.running = False
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # ------------------------------------------------------------------
    # Open mode: tick → queue → drain
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self.running:
            return
        cfg = self.config
        assert self.workload.arrivals is not None and self._stream is not None
        demand = self.workload.arrivals.sample(
            self._stream, self.sim.now, cfg.tick, cfg.n_clients
        )
        if demand <= 0:
            self._drain()
            return
        self.offered += demand
        self._counter("offered").inc(demand)
        room = cfg.queue_limit - self.backlog
        if demand > room:
            self._record_shed(demand - room, SHED_QUEUE_FULL)
            demand = room
        self.backlog += demand
        self._drain()

    def _drain(self) -> None:
        # submit() can complete synchronously (degraded fast-fail), which
        # re-enters _drain via _on_done; the guard flattens that recursion
        # into this loop so a 10^4-op backlog cannot blow the stack.
        if self._draining:
            return
        self._draining = True
        try:
            cfg = self.config
            while self.running and self.backlog > 0:
                # Peek (op() is pure in the index): a leased local read
                # bypasses the ordered-inflight cap, everything else is
                # subject to it.  A capped write at the queue head blocks
                # the reads behind it — admission stays FIFO.
                op = self.workload.op(self._issued)
                local_read = self._is_local_read(op)
                if not local_read and self.ordered_inflight >= cfg.max_inflight:
                    break
                self.backlog -= 1
                self._issued += 1
                if self.admission is not None:
                    reason = self.admission.decide(self._shards_for(op))
                    if reason is not None:
                        self._record_shed(1, reason)
                        continue
                self.admitted += 1
                self._counter("admitted").inc()
                self.inflight += 1
                if local_read:
                    self._counter("admitted_local_read").inc()
                else:
                    self.ordered_inflight += 1
                self.router.submit(
                    op,
                    lambda result, ordered=not local_read: self._on_done(
                        result, ordered
                    ),
                )
        finally:
            self._draining = False

    def _is_local_read(self, op: Any) -> bool:
        """True when ``op`` is a read the router can serve from a lease."""
        if self._read_predicate is None or not self._read_predicate(op):
            return False
        return self.router.serves_leased_reads(op)

    def _on_done(self, result: "TicketResult", ordered: bool = True) -> None:
        self.inflight -= 1
        if ordered:
            self.ordered_inflight -= 1
        if result.ok:
            self.record_completion(self.sim.now, result.latency)
            self._counter("completed").inc()
            self._histogram("latency").observe(result.latency)
        else:
            self.failures += 1
            self._counter("failed").inc()
        if self.running:
            self._drain()

    def _shards_for(self, op: Any) -> List[str]:
        keys = self.router.config.key_of(op)
        if isinstance(keys, list):
            return sorted({self.router.directory.shard_for(k) for k in keys})
        return [self.router.directory.shard_for(keys)]

    def _record_shed(self, count: int, reason: str) -> None:
        if count <= 0:
            return
        self.shed += count
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + count
        self._counter("shed").inc(count)
        self._counter(f"shed.{reason}").inc(count)

    # ------------------------------------------------------------------
    # Closed mode: per-client think-time loops (the compat path)
    # ------------------------------------------------------------------
    def _issue_closed(self) -> None:
        if not self.running:
            return
        cfg = self.config
        if (
            cfg.max_requests is not None
            and self._issued >= cfg.max_requests * max(1, cfg.n_clients)
        ):
            self.running = False
            return
        op = self.workload.op(self._issued)
        self._issued += 1
        self.offered += 1
        self.admitted += 1
        self.inflight += 1
        self.router.submit(op, self._on_closed_done)

    def _on_closed_done(self, result: "TicketResult") -> None:
        self.inflight -= 1
        if result.ok:
            self.record_completion(self.sim.now, result.latency)
        else:
            self.failures += 1
        if self.running:
            self.sim.schedule(self.config.think_time, self._issue_closed)

    # ------------------------------------------------------------------
    # Metrics plumbing (open mode publishes under mesoscale.<name>.*)
    # ------------------------------------------------------------------
    def _counter(self, suffix: str):
        return self.router.chip.metrics.counter(f"mesoscale.{self.name}.{suffix}")

    def _histogram(self, suffix: str):
        return self.router.chip.metrics.histogram(f"mesoscale.{self.name}.{suffix}")
