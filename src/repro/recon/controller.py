"""The reconfiguration coordinator: drives proposals over the NoC."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.fabric.icap import IcapResult
from repro.fabric.region import ReconfigurableRegion
from repro.recon.consensual import PrivilegeVote, VotingGate, WriteProposal
from repro.recon.kernel import VoteRequest, VoteResponse
from repro.soc.chip import is_corrupted
from repro.soc.node import Node


class ReconfigCoordinator(Node):
    """Collects kernel votes for a proposal and submits them to the gate.

    The coordinator is *untrusted*: it merely shuttles bytes.  A
    compromised coordinator can withhold proposals (denial of service)
    but cannot forge votes or bypass the gate.
    """

    def __init__(self, name: str, gate: VotingGate, kernels: List[str]) -> None:
        super().__init__(name)
        self.gate = gate
        self.kernels = list(kernels)
        self._pending: Dict[int, _PendingProposal] = {}
        self.submitted = 0

    def propose(
        self,
        proposal: WriteProposal,
        region: ReconfigurableRegion,
        on_done: Optional[Callable[[IcapResult], None]] = None,
    ) -> None:
        """Start a vote round for ``proposal``."""
        pending = _PendingProposal(proposal, region, on_done)
        self._pending[proposal.epoch] = pending
        request = VoteRequest(proposal, self.name)
        self.broadcast(self.kernels, request, request.wire_size())

    def on_message(self, sender: str, message: Any) -> None:
        if is_corrupted(message):
            return
        if not isinstance(message, VoteResponse):
            return
        if sender != message.voter or sender not in self.kernels:
            return
        pending = self._pending.get(message.proposal_epoch)
        if pending is None or pending.submitted:
            return
        if message.vote is not None:
            pending.votes.append(message.vote)
        else:
            pending.refusals += 1
        if len(pending.votes) >= self.gate.quorum:
            pending.submitted = True
            self.submitted += 1
            # The gate reports the final result through on_done itself.
            self.gate.submit(pending.proposal, pending.votes, pending.region, pending.on_done)
        elif pending.refusals > len(self.kernels) - self.gate.quorum:
            # Quorum unreachable: report denial.
            pending.submitted = True
            if pending.on_done is not None:
                pending.on_done(IcapResult.DENIED_ACL)


class _PendingProposal:
    """Vote-collection state for one proposal."""

    def __init__(
        self,
        proposal: WriteProposal,
        region: ReconfigurableRegion,
        on_done: Optional[Callable[[IcapResult], None]],
    ) -> None:
        self.proposal = proposal
        self.region = region
        self.on_done = on_done
        self.votes: List[PrivilegeVote] = []
        self.refusals = 0
        self.submitted = False
