"""The voting gate: a trusted-trustworthy hybrid guarding the ICAP."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.crypto.keys import KeyStore
from repro.crypto.mac import canonical_bytes, compute_mac, verify_mac_bytes
from repro.fabric.bitstream import Bitstream
from repro.fabric.icap import IcapPort, IcapResult
from repro.fabric.region import ReconfigurableRegion


@dataclass(frozen=True)
class WriteProposal:
    """A proposed configuration write: what, where, when (epoch)."""

    region_id: str
    bitstream: Bitstream
    epoch: int

    def vote_payload(self) -> tuple:
        """The tuple a vote's MAC covers — binds region, image, and epoch."""
        return (
            self.region_id,
            self.bitstream.variant,
            self.bitstream.payload_digest,
            self.epoch,
        )


@dataclass(frozen=True)
class PrivilegeVote:
    """One kernel replica's endorsement of a proposal."""

    voter: str
    region_id: str
    epoch: int
    mac: bytes

    @property
    def size_bytes(self) -> int:
        """Wire size of a vote."""
        return 4 + 4 + 8 + len(self.mac)


def make_vote(voter: str, proposal: WriteProposal, keystore: KeyStore) -> PrivilegeVote:
    """Endorse a proposal (runs inside the voter's trusted perimeter)."""
    mac = compute_mac(keystore.secret_for(voter), proposal.vote_payload())
    return PrivilegeVote(voter, proposal.region_id, proposal.epoch, mac)


class VotingGate:
    """The consensual-privilege-change hybrid at the configuration port.

    Small enough to be verified (vote check + counter + forward), the
    gate holds the only ACL entry on the ICAP.  A write goes through iff

    * the proposal's epoch is the gate's current epoch (no replays),
    * >= ``quorum`` *distinct registered voters* produced valid MACs over
      exactly this proposal, and
    * the bitstream validates against the golden store (the gate, not the
      kernel, performs validation — a compromised kernel cannot bypass it).

    Every accepted write bumps the epoch, so each decision is one-shot.
    """

    def __init__(
        self,
        icap: IcapPort,
        keystore: KeyStore,
        voters: Iterable[str],
        quorum: int,
        gate_principal: str = "voting-gate",
    ) -> None:
        voters = list(voters)
        if quorum < 1 or quorum > len(voters):
            raise ValueError(f"quorum {quorum} impossible with {len(voters)} voters")
        self.icap = icap
        self._keystore = keystore
        self.voters: Set[str] = set(voters)
        self.quorum = quorum
        self.gate_principal = gate_principal
        self.epoch = 0
        self.accepted = 0
        self.rejected_quorum = 0
        self.rejected_epoch = 0
        self.rejected_invalid = 0
        icap.grant(gate_principal)

    def submit(
        self,
        proposal: WriteProposal,
        votes: List[PrivilegeVote],
        region: ReconfigurableRegion,
        on_done: Optional[Callable[[IcapResult], None]] = None,
    ) -> IcapResult:
        """Attempt a consensual write.

        Returns the synchronous verdict; ``on_done`` is always invoked
        exactly once (asynchronously) with the final result.
        """
        verdict = self._check(proposal, votes, region)
        if verdict is not None:
            if on_done is not None:
                self.icap.sim.call_soon(on_done, verdict)
            return verdict
        self.epoch += 1
        self.accepted += 1
        return self.icap.write(self.gate_principal, region, proposal.bitstream, on_done)

    def _check(
        self,
        proposal: WriteProposal,
        votes: List[PrivilegeVote],
        region: ReconfigurableRegion,
    ) -> Optional[IcapResult]:
        """Gate-side checks; None means the write may proceed."""
        if proposal.epoch != self.epoch:
            self.rejected_epoch += 1
            return IcapResult.DENIED_ACL
        if region.region_id != proposal.region_id:
            self.rejected_invalid += 1
            return IcapResult.DENIED_ACL
        valid_voters = self._count_valid(proposal, votes)
        if len(valid_voters) < self.quorum:
            self.rejected_quorum += 1
            return IcapResult.DENIED_ACL
        # Validation happens inside the gate regardless of kernel opinion.
        if not self.icap.store.validate(proposal.bitstream):
            self.rejected_invalid += 1
            return IcapResult.INVALID_BITSTREAM
        return None

    def _count_valid(
        self, proposal: WriteProposal, votes: List[PrivilegeVote]
    ) -> Set[str]:
        # One-pass MAC vector check: serialize the proposal payload once,
        # verify per voter key (every vote covers the identical bytes).
        data = canonical_bytes(proposal.vote_payload())
        valid: Set[str] = set()
        for vote in votes:
            if vote.voter not in self.voters:
                continue
            if vote.region_id != proposal.region_id or vote.epoch != proposal.epoch:
                continue
            secret = self._keystore.secret_for(vote.voter)
            if verify_mac_bytes(secret, data, vote.mac):
                valid.add(vote.voter)
        return valid
