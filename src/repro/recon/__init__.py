"""Resilient reconfiguration: consensual privilege change (paper §II.E).

"Privilege change must remain a trusted operation executed *consensually*
and enforced by a trusted-trustworthy component" (citing Gouveia et al.,
Computers & Security 2022).  Here the privileged operation is writing the
FPGA configuration memory:

* :class:`~repro.recon.consensual.VotingGate` — the trusted-trustworthy
  hybrid in front of the ICAP: executes a write only when a quorum of
  kernel replicas has cryptographically endorsed exactly that
  (region, bitstream) pair in the current epoch.
* :class:`~repro.recon.kernel.KernelReplica` — a replicated
  reconfiguration kernel: validates proposals against its golden store
  and issues endorsement votes; compromised kernels endorse anything.
* :class:`~repro.recon.controller.ReconfigCoordinator` — drives proposals
  over the NoC: broadcast to kernels, collect votes, submit to the gate.

The single-writer baseline for E7 is the plain
:class:`~repro.fabric.icap.IcapPort` with one almighty kernel on its ACL
— whoever compromises that kernel owns the fabric.
"""

from repro.recon.consensual import PrivilegeVote, VotingGate, WriteProposal
from repro.recon.controller import ReconfigCoordinator
from repro.recon.kernel import KernelReplica

__all__ = [
    "KernelReplica",
    "PrivilegeVote",
    "ReconfigCoordinator",
    "VotingGate",
    "WriteProposal",
]
