"""Replicated reconfiguration kernels: the voters of the consensual gate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.fabric.bitstream import BitstreamStore
from repro.recon.consensual import PrivilegeVote, WriteProposal, make_vote
from repro.soc.chip import is_corrupted
from repro.soc.node import Node


@dataclass(frozen=True)
class VoteRequest:
    """Coordinator asks a kernel to consider a proposal."""

    proposal: WriteProposal
    coordinator: str

    def wire_size(self) -> int:
        return 64


@dataclass(frozen=True)
class VoteResponse:
    """A kernel's answer: an endorsement vote or a refusal."""

    proposal_epoch: int
    region_id: str
    vote: Optional[PrivilegeVote]
    voter: str

    def wire_size(self) -> int:
        return 32 + (self.vote.size_bytes if self.vote else 0)


class KernelReplica(Node):
    """One replica of the reconfiguration kernel.

    Correct kernels endorse a proposal only when the bitstream validates
    against their local golden store ("validating that a correct
    bitstream is written [is a] task that can be executed by the
    responsible kernel or possibly even kernel replicas", §II.E).

    A *compromised* kernel (``state == COMPROMISED``) endorses everything
    — including forged bitstreams — modelling an attacker who owns the
    kernel software.  Its vote MAC is still genuine (the attacker holds
    the kernel's identity), which is precisely why a quorum is needed.
    """

    def __init__(self, name: str, store: BitstreamStore, keystore) -> None:
        super().__init__(name)
        self.store = store
        self.keystore = keystore
        self.votes_cast = 0
        self.votes_refused = 0

    def on_message(self, sender: str, message: Any) -> None:
        if is_corrupted(message):
            return
        if not isinstance(message, VoteRequest):
            return
        response = self._consider(message.proposal)
        self.send(sender, response, response.wire_size())

    def _consider(self, proposal: WriteProposal) -> VoteResponse:
        endorse = self.store.validate(proposal.bitstream)
        if self.state.value == "compromised":
            endorse = True  # the adversary endorses anything
        if not endorse:
            self.votes_refused += 1
            return VoteResponse(proposal.epoch, proposal.region_id, None, self.name)
        self.votes_cast += 1
        vote = make_vote(self.name, proposal, self.keystore)
        return VoteResponse(proposal.epoch, proposal.region_id, vote, self.name)
