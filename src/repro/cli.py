"""Command-line interface: ``python -m repro <command>`` (or ``repro …``
once installed via the console-script entry point).

Commands
--------
``info``
    Print the package inventory and version.
``demo``
    Run a short end-to-end demo (the quickstart scenario) and print its
    summary.
``shard``
    Run the sharded service layer (N replica groups on one chip) and
    print the per-shard report; ``--kill-shard s1`` exercises
    shard-level failover.
``mesoscale``
    Drive aggregated client populations (10^5–10^6 modeled clients,
    O(populations) memory) through the sharded service with admission
    control and load shedding; ``--kill-shard s1`` shows demand being
    shed at the source while survivors keep serving.
``leases``
    Compare the read path with primary-granted read leases off vs on
    (P4): a read-heavy aggregated population over a sharded system,
    reporting local-read share, lease churn, and the throughput ratio.
``experiments``
    List the experiment index (id, claim, bench target); ``--verify``
    checks the index against the actual ``benchmarks/`` directory.
``campaign list|run|report``
    The sweep-scale evaluation engine (:mod:`repro.campaign`): run
    built-in campaigns in parallel, resume interrupted ones, and
    aggregate results across seeds.
``faultspace``
    The C3 statistical fault-injection campaign (:mod:`repro.faultspace`):
    sample the chip's fault space per stratum, classify every injection
    into {masked, SDC, detected-recovered, unavailable}, stop each
    stratum once its confidence interval is tight enough, and write the
    byte-stable dependability summary.
``pdes``
    One conservative parallel-simulation trial (:mod:`repro.pdes`):
    per-shard-region domains advanced in lookahead-barrier windows,
    inline or across worker processes; ``--verify`` re-runs in the
    opposite mode and fails unless the summaries are byte-identical.
``evolve``
    Evolutionary design-space exploration (:mod:`repro.evolve`): an
    NSGA-II loop over the protocol/batching/sharding/placement/
    rejuvenation space with common random numbers, shared trial
    memoization, and CI-bound early kills; writes the byte-stable
    ``pareto.json`` / ``front.txt`` decision-support artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, List, Optional

EXPERIMENTS = [
    ("E1", "Fig.1: redundancy per layer masks faults", "bench_e1_layers.py"),
    ("E2", "SIII: hybrids cut 3f+1 to 2f+1", "bench_e2_hybrid_bft.py"),
    ("E3", "SII.B: diversity vs common-mode failure", "bench_e3_diversity.py"),
    ("E4", "SII.C: rejuvenation vs APTs", "bench_e4_rejuvenation.py"),
    ("E5", "SII.D: threat-adaptive protocol switching", "bench_e5_adaptation.py"),
    ("E6", "SIII: hybrid complexity middle ground", "bench_e6_hybrid_complexity.py"),
    ("E7", "SII.E: consensual reconfiguration", "bench_e7_reconfig.py"),
    ("E8", "SII.A: passive vs active replication", "bench_e8_passive_active.py"),
    ("E9", "SII.A: replica elasticity (spawn like VMs)", "bench_e9_elasticity.py"),
    ("E10", "SII.C: partial rejuvenation vs device restart", "bench_e10_partial_rejuv.py"),
    ("E11", "SI: networked systems of SoCs", "bench_e11_spanning.py"),
    ("E12", "read-only fast path", "bench_e12_read_path.py"),
    ("A1", "ablation: the hybrid interface is the trust anchor", "bench_a1_hybrid_interface.py"),
    ("A2", "ablation: severity-detector tuning", "bench_a2_severity_ablation.py"),
    ("C1", "campaign engine: sweep-scale evaluation", "bench_campaign_smoke.py"),
    ("C2", "SII: sharding scales throughput across replica groups", "bench_c2_shard_scaling.py"),
    ("C3", "statistical fault injection: outcome CIs + MTTF bounds", "bench_c3_faultspace.py"),
    ("C4", "mesoscale traffic: 10^5+ aggregated clients, admission + shedding", "bench_c4_mesoscale.py"),
    ("P1", "perf: NoC express path + kernel hot-path overhaul", "bench_p1_hotpath.py"),
    ("P2", "perf: consensus batching + pipelined agreement", "bench_p2_consensus.py"),
    ("P3", "perf: conservative PDES, byte-identical parallel domains", "bench_p3_pdes.py"),
    ("P4", "perf: leased local reads with bounded staleness", "bench_p4_leased_reads.py"),
    ("P5", "perf: evolutionary search reaches the Pareto front >=2x cheaper than sweeps", "bench_p5_evolve.py"),
]


def cmd_info(args: argparse.Namespace) -> int:
    """Print version and package inventory."""
    import repro

    print(f"repro {repro.__version__} — fault- and intrusion-resilient "
          f"manycore systems on a chip (DSN 2023 reproduction)")
    print("subsystems:", ", ".join(repro.__all__))
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """Run a short end-to-end scenario and print the outcome."""
    from repro.core import OrchestratorConfig, ResilientSystem
    from repro.core.rejuvenation import RejuvenationPolicy

    system = ResilientSystem(
        OrchestratorConfig(
            seed=args.seed,
            protocol=args.protocol,
            f=1,
            rejuvenation=RejuvenationPolicy(period=60_000),
        )
    )
    system.add_client("c0")
    system.start()
    system.run(args.duration)
    print(system.summary())
    return 0 if system.is_safe else 1


def cmd_shard(args: argparse.Namespace) -> int:
    """Run a sharded-service scenario and print the per-shard report."""
    from repro.mesoscale import PopulationConfig
    from repro.metrics.tables import Table
    from repro.shard import ShardConfig, ShardedSystem
    from repro.workloads import FactoryWorkload

    def op_factory(i: int) -> Any:
        key = f"k{i % 256}"
        return ("put", key, i) if i % 2 == 0 else ("get", key)

    system = ShardedSystem(
        ShardConfig(
            seed=args.seed,
            n_shards=args.shards,
            protocol=args.protocol,
            width=args.width,
            height=args.height,
            enable_rejuvenation=not args.no_rejuvenation,
        )
    )
    drivers = [
        system.attach_population(
            f"c{i}",
            PopulationConfig(
                n_clients=1,
                mode="closed",
                think_time=args.think_time,
                workload=FactoryWorkload(op_factory, name="kv-shard"),
            ),
        )
        for i in range(args.clients)
    ]
    system.start()
    start = system.sim.now
    if args.kill_shard is not None:
        if args.kill_shard not in system.shards:
            print(f"unknown shard {args.kill_shard!r}; have "
                  f"{', '.join(system.directory.shard_ids)}", file=sys.stderr)
            return 2
        system.sim.schedule(args.duration / 2, system.kill_shard, args.kill_shard)
    system.run(args.duration)

    table = Table(
        "shard",
        ["shard", "status", "protocol", "replicas", "ops", "p50", "p95", "threat"],
        title=f"{args.shards}-shard service, {args.clients} clients",
    )
    for shard_id in system.directory.shard_ids:
        m = system.shard_metrics(shard_id)
        table.add_row([
            m["shard"], m["status"], m["protocol"], m["correct"],
            m["ops"], round(float(m["p50_latency"]), 1),
            round(float(m["p95_latency"]), 1), m["threat"],
        ])
    print(table.render())
    ops = sum(d.completions_in(start, system.sim.now) for d in drivers)
    print(f"\nmeasured window: {ops} ops "
          f"({ops / (args.duration / 1000.0):.1f} ops/s sim), "
          f"{system.failed_operations()} failed")
    print(system.summary())
    degraded = system.directory.degraded_shards()
    if args.kill_shard is not None:
        survivors_ok = all(
            system.shard_safe(s) for s in system.directory.live_shards()
        )
        return 0 if degraded == [args.kill_shard] and survivors_ok else 1
    return 0 if system.is_safe and not degraded else 1


def cmd_mesoscale(args: argparse.Namespace) -> int:
    """Run aggregated client populations against the sharded service."""
    from repro.mesoscale import PopulationConfig
    from repro.metrics.tables import Table
    from repro.metrics.traffic import (
        aggregate_completions,
        aggregate_latencies,
        latency_percentiles,
    )
    from repro.shard import ShardConfig, ShardedSystem
    from repro.workloads import (
        DiurnalArrivals,
        FlashCrowdArrivals,
        ParetoArrivals,
        PoissonArrivals,
        kv_workload,
    )

    if args.process == "poisson":
        arrivals: Any = PoissonArrivals(args.rate)
    elif args.process == "pareto":
        arrivals = ParetoArrivals(args.rate)
    elif args.process == "diurnal":
        arrivals = DiurnalArrivals(args.rate, period=args.duration)
    else:
        spike = args.duration / 4.0
        arrivals = FlashCrowdArrivals(
            args.rate,
            spike_start=60_000.0 + spike,
            spike_duration=spike,
            ramp=spike / 8.0,
        )
    system = ShardedSystem(
        ShardConfig(
            seed=args.seed,
            n_shards=args.shards,
            protocol=args.protocol,
            width=args.width,
            height=args.height,
            enable_rejuvenation=False,
        )
    )
    per_pop = max(1, args.clients // args.populations)
    populations = [
        system.attach_population(
            f"pop{i}",
            PopulationConfig(
                n_clients=per_pop,
                workload=kv_workload(keys=256, arrivals=arrivals),
                tick=args.tick,
                max_inflight=args.max_inflight,
            ),
        )
        for i in range(args.populations)
    ]
    system.start()
    start = system.sim.now
    if args.kill_shard is not None:
        if args.kill_shard not in system.shards:
            print(f"unknown shard {args.kill_shard!r}; have "
                  f"{', '.join(system.directory.shard_ids)}", file=sys.stderr)
            return 2
        system.sim.schedule(args.duration / 2, system.kill_shard, args.kill_shard)
    system.run(args.duration)
    end = system.sim.now

    table = Table(
        "population",
        ["population", "clients", "offered", "admitted", "shed", "ops",
         "p50", "p99"],
        title=(f"{args.populations} population(s), "
               f"{per_pop * args.populations} modeled clients, "
               f"{args.process} arrivals"),
    )
    for population in populations:
        pct = latency_percentiles(
            population.latencies_in(start, end), (50.0, 99.0)
        )
        table.add_row([
            population.name, population.modeled_clients, population.offered,
            population.admitted, population.shed,
            population.completions_in(start, end),
            round(pct["p50"], 1), round(pct["p99"], 1),
        ])
    print(table.render())
    ops = aggregate_completions(populations, start, end)
    pct = latency_percentiles(aggregate_latencies(populations, start, end),
                              (50.0, 99.0))
    shed = sum(p.shed for p in populations)
    offered = sum(p.offered for p in populations)
    print(f"\nmeasured window: {ops} ops "
          f"({ops / (args.duration / 1000.0):.1f} ops/s sim), "
          f"p50={pct['p50']:.1f}ms p99={pct['p99']:.1f}ms, "
          f"shed {shed}/{offered} offered")
    print(system.summary())
    if args.kill_shard is not None:
        shed_degraded = sum(
            p.shed_by_reason.get("degraded", 0) for p in populations
        )
        survivors_ok = all(
            system.shard_safe(s) for s in system.directory.live_shards()
        )
        ok = (system.directory.degraded_shards() == [args.kill_shard]
              and shed_degraded > 0 and survivors_ok)
        return 0 if ok else 1
    return 0 if system.is_safe and ops > 0 else 1


def cmd_leases(args: argparse.Namespace) -> int:
    """Compare the read path with leases off vs on (the P4 story)."""
    from repro.campaign.runners import get_runner
    from repro.metrics.tables import Table

    runner = get_runner("leased_reads")
    base = {
        "protocol": args.protocol,
        "n_shards": args.shards,
        "n_clients": args.clients,
        "rate_per_client": args.rate,
        "read_ratio": args.read_ratio,
        "duration": args.duration,
        "lease_duration": args.lease_duration,
        "renew_period": args.renew_period,
        "n_ranges": args.ranges,
        "width": args.width,
        "height": args.height,
    }
    off = runner({**base, "leases": 0}, args.seed)
    on = runner({**base, "leases": 1}, args.seed)
    table = Table(
        "leases",
        ["read path", "ops", "ops/s (sim)", "p95 lat", "local", "fallback",
         "granted", "revoked", "safe"],
        title=(f"{args.protocol}: quorum fast path vs leased reads, "
               f"{args.clients} modeled clients @ "
               f"{int(args.read_ratio * 100)}% reads"),
    )
    for label, r in (("quorum", off), ("leased", on)):
        table.add_row([
            label, r["ops"], round(r["ops_per_sec"], 1),
            round(r["p95_latency_ms"], 1), r["reads_local"],
            r["reads_quorum_fallback"], r["lease_granted"],
            r["lease_revoked"], "yes" if r["safe"] else "NO",
        ])
    print(table.render())
    ratio = on["ops_per_sec"] / off["ops_per_sec"] if off["ops_per_sec"] else 0.0
    print(f"\nleased/quorum throughput: {ratio:.2f}x "
          f"(ordered fraction {on['ordered_frac']:.3f} leased, "
          f"{off['ordered_frac']:.3f} quorum)")
    ok = bool(off["safe"] and on["safe"] and on["reads_local"] > 0)
    return 0 if ok else 1


def benchmarks_dir() -> Path:
    """The repo's ``benchmarks/`` directory (next to ``src/``)."""
    return Path(__file__).resolve().parents[2] / "benchmarks"


def verify_experiments_index(bench_dir: Optional[Path] = None) -> List[str]:
    """Cross-check :data:`EXPERIMENTS` against the bench files on disk.

    The index is hand-maintained (each entry carries a human claim no
    filename can encode), so it can drift: a bench added without an index
    entry, an entry pointing at a renamed file, or a duplicate id.
    Returns a list of drift messages — empty means the index is exact.
    A regression test calls this so drift fails CI instead of lingering.
    """
    bench_dir = bench_dir or benchmarks_dir()
    problems: List[str] = []
    on_disk = {p.name for p in bench_dir.glob("bench_*.py")}
    indexed = [bench for _, _, bench in EXPERIMENTS]
    seen_ids = set()
    for exp_id, _, bench in EXPERIMENTS:
        if exp_id in seen_ids:
            problems.append(f"duplicate experiment id {exp_id!r} in EXPERIMENTS")
        seen_ids.add(exp_id)
        if bench not in on_disk:
            problems.append(
                f"EXPERIMENTS entry {exp_id} points at missing file "
                f"benchmarks/{bench}"
            )
    for name in sorted(on_disk - set(indexed)):
        problems.append(f"benchmarks/{name} has no EXPERIMENTS index entry")
    dupes = {b for b in indexed if indexed.count(b) > 1}
    for name in sorted(dupes):
        problems.append(f"benchmarks/{name} is indexed more than once")
    return problems


def cmd_experiments(args: argparse.Namespace) -> int:
    """List the experiment index (optionally verifying it against disk)."""
    width = max(len(e[0]) for e in EXPERIMENTS)
    for exp_id, claim, bench in EXPERIMENTS:
        print(f"{exp_id.ljust(width)}  {claim:55s} benchmarks/{bench}")
    print()
    print("run all:  pytest benchmarks/ --benchmark-only -s")
    if getattr(args, "verify", False):
        problems = verify_experiments_index()
        if problems:
            for problem in problems:
                print(f"DRIFT: {problem}", file=sys.stderr)
            return 1
        print("index verified: matches benchmarks/ exactly")
    return 0


def cmd_faultspace(args: argparse.Namespace) -> int:
    """Run the C3 statistical fault-injection campaign."""
    from repro.faultspace import FaultspaceConfig, SequentialCampaign, render_report

    try:
        cfg = FaultspaceConfig(
            name=args.name,
            system=args.system,
            protocol=args.protocol,
            f=args.f,
            strata=args.strata or None,
            include_uniform=args.uniform,
            max_per_stratum=args.max_per_stratum,
            min_per_stratum=args.min_per_stratum,
            round_size=args.round_size,
            target_half_width=args.target_half_width,
            confidence=args.confidence,
            ci_method=args.method,
            early_stop=not args.no_early_stop,
            duration=args.duration,
            warmup=args.warmup,
            campaign_seed=args.campaign_seed,
            workers=args.workers,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    progress = None if args.quiet else print
    campaign = SequentialCampaign(cfg, args.out, progress=progress, fresh=args.fresh)
    summary = campaign.run()
    print()
    print(render_report(summary))
    print(
        f"results: {campaign.store.results_path}  "
        f"summary: {campaign.store.summary_path}"
    )
    return 0 if summary["overall"]["outcomes"]["sdc"]["count"] == 0 else 1


def cmd_evolve(args: argparse.Namespace) -> int:
    """Run (or resume) the P5 evolutionary design-space exploration."""
    from repro.evolve import EvolutionaryCampaign, EvolveConfig, render_front

    base = {
        "duration": args.duration,
        "warmup": args.warmup,
        "n_clients": args.n_clients,
        "rate_per_client": args.rate,
    }
    try:
        cfg = EvolveConfig(
            name=args.name,
            runner=args.runner,
            strategy=args.strategy,
            population=args.population,
            generations=args.generations,
            seeds_per_eval=args.seeds,
            min_seeds=args.min_seeds if args.min_seeds is not None else args.seeds,
            mutation_rate=args.mutation_rate,
            crossover_rate=args.crossover_rate,
            campaign_seed=args.campaign_seed,
            workers=args.workers,
            trial_timeout=args.trial_timeout,
            base=base,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    progress = None if args.quiet else print
    campaign = EvolutionaryCampaign(cfg, Path(args.out), progress=progress)
    summary = campaign.run(fresh=args.fresh)
    print()
    print(render_front(summary))
    print(f"artifacts: {campaign.directory / 'pareto.json'}  "
          f"{campaign.directory / 'front.txt'}")
    return 0 if summary["front"] else 1


def cmd_pdes(args: argparse.Namespace) -> int:
    """Run one conservative-PDES trial (P3), optionally cross-checking modes."""
    from repro.metrics.tables import Table
    from repro.pdes import PdesConfig, PdesCoordinator, summary_bytes

    try:
        config = PdesConfig(
            seed=args.seed,
            n_domains=args.domains,
            shards_per_domain=args.shards_per_domain,
            protocol=args.protocol,
            f=args.f,
            width=args.width,
            height=args.height,
            duration=args.duration,
            warmup=args.warmup,
            inter_domain_hops=args.inter_domain_hops,
            window=args.window,
            tick=args.tick,
            rate_per_tick=args.rate,
            max_inflight=args.max_inflight,
            workers=args.workers,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    coordinator = PdesCoordinator(config)
    summary = coordinator.run()

    table = Table(
        "domain",
        ["domain", "shards", "local", "remote_out", "remote_in", "ok",
         "failed", "shed"],
        title=(f"{config.n_domains} domain(s) x {config.shards_per_domain} "
               f"shard(s), window={config.barrier_window:g} "
               f"lookahead={config.lookahead:g}, workers={config.workers}"),
    )
    for domain_id in sorted(summary["domains"]):
        d = summary["domains"][domain_id]
        table.add_row([
            domain_id, config.shards_per_domain, d["local_submitted"],
            d["remote_out"], d["remote_in"], d["completed_ok"],
            d["completed_failed"], d["shed"],
        ])
    print(table.render())
    totals = summary["totals"]
    latency = summary["latency"]
    print(f"\n{summary['n_windows']} barrier windows, "
          f"{totals['completed_ok']} ops "
          f"({totals['ops_per_sec']:.1f} ops/s sim), "
          f"p50={latency['p50']:.1f}ms p99={latency['p99']:.1f}ms, "
          f"{totals['remote_out']} cross-domain ops, "
          f"safe={bool(totals['safe'])}")
    print(f"wall: {coordinator.wall_seconds:.2f}s "
          f"(workers={config.workers}; wall time is not part of the summary)")

    if args.verify:
        import dataclasses

        other_workers = 1 if config.workers > 1 else min(config.n_domains, 2)
        other = PdesCoordinator(
            dataclasses.replace(config, workers=other_workers)
        )
        other_summary = other.run()
        identical = summary_bytes(summary) == summary_bytes(other_summary)
        print(f"verify: workers={config.workers} vs workers={other_workers} "
              f"-> {'byte-identical' if identical else 'MISMATCH'}")
        if not identical:
            return 1
    return 0 if totals["safe"] else 1


# ----------------------------------------------------------------------
# campaign subcommands
# ----------------------------------------------------------------------

def _parse_override(text: str) -> Any:
    """``key=value`` with the value parsed as JSON, falling back to str."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"override {text!r} must look like key=value"
        )
    key, _, raw = text.partition("=")
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def cmd_campaign_list(args: argparse.Namespace) -> int:
    """List the built-in campaign definitions."""
    from repro.campaign import BUILTIN_CAMPAIGNS, build_campaign

    for name in sorted(BUILTIN_CAMPAIGNS):
        spec = build_campaign(name)
        print(
            f"{name:12s} {spec.n_trials:4d} trials  runner={spec.runner:12s} "
            f"{spec.description}"
        )
    print()
    print("run one:  python -m repro campaign run <name> --workers 4")
    return 0


def cmd_campaign_run(args: argparse.Namespace) -> int:
    """Run (or resume) a built-in campaign and write its report."""
    from repro.campaign import (
        CampaignExecutor,
        ResultStore,
        build_campaign,
        render_report,
        write_summary,
    )

    overrides = dict(args.set or [])
    try:
        spec = build_campaign(
            args.name,
            n_seeds=args.seeds,
            campaign_seed=args.campaign_seed,
            base_overrides=overrides or None,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.timeout is not None:
        spec.trial_timeout = args.timeout if args.timeout > 0 else None
    if args.retries is not None:
        spec.max_retries = args.retries
    from repro.campaign import SpecMismatchError

    try:
        store = ResultStore(args.out, spec).open(fresh=args.fresh)
    except SpecMismatchError as exc:
        print(exc, file=sys.stderr)
        return 1
    try:
        progress = None if args.quiet else print
        stats = CampaignExecutor(
            spec, store, workers=args.workers, progress=progress
        ).run(limit=args.limit)
        summary = write_summary(store)
    finally:
        store.close()
    print()
    print(render_report(spec, summary))
    print()
    print(
        f"results: {store.results_path}  summary: {store.summary_path}  "
        f"({stats.succeeded} ok / {stats.failed} failed / "
        f"{stats.skipped} resumed-skip, {stats.wall_time_s:.2f}s)"
    )
    return 0 if stats.failed == 0 else 1


def cmd_campaign_report(args: argparse.Namespace) -> int:
    """Re-aggregate a campaign directory and print its report."""
    from repro.campaign import CampaignSpec, ResultStore, render_report, write_summary

    spec_path = Path(args.out) / args.name / "spec.json"
    if not spec_path.exists():
        print(f"no campaign at {spec_path.parent} (missing spec.json)", file=sys.stderr)
        return 1
    data = json.loads(spec_path.read_text(encoding="utf-8"))
    data.pop("spec_hash", None)
    spec = CampaignSpec.from_dict(data)
    store = ResultStore(args.out, spec).open()
    summary = write_summary(store)
    print(render_report(spec, summary))
    print(f"\nsummary: {store.summary_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault- and intrusion-resilient manycore systems on a chip",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package inventory").set_defaults(fn=cmd_info)

    demo = sub.add_parser("demo", help="run a short end-to-end scenario")
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--protocol", choices=["minbft", "pbft", "cft", "passive"],
                      default="minbft")
    demo.add_argument("--duration", type=float, default=300_000.0)
    demo.set_defaults(fn=cmd_demo)

    shard = sub.add_parser("shard", help="run a sharded-service scenario")
    shard.add_argument("--seed", type=int, default=42)
    shard.add_argument("--shards", type=int, default=2,
                       help="number of independent replica groups")
    shard.add_argument("--clients", type=int, default=4,
                       help="closed-loop router/driver pairs")
    shard.add_argument("--protocol", choices=["minbft", "pbft", "cft", "passive"],
                       default="minbft")
    shard.add_argument("--duration", type=float, default=240_000.0)
    shard.add_argument("--think-time", type=float, default=100.0)
    shard.add_argument("--width", type=int, default=8)
    shard.add_argument("--height", type=int, default=8)
    shard.add_argument("--kill-shard", default=None, metavar="SHARD",
                       help="crash this shard's tiles mid-run (e.g. s1)")
    shard.add_argument("--no-rejuvenation", action="store_true",
                       help="disable per-shard proactive rejuvenation")
    shard.set_defaults(fn=cmd_shard)

    mesoscale = sub.add_parser(
        "mesoscale", help="drive aggregated client populations (C4)"
    )
    mesoscale.add_argument("--seed", type=int, default=42)
    mesoscale.add_argument("--clients", type=int, default=100_000,
                           help="total modeled clients across populations")
    mesoscale.add_argument("--populations", type=int, default=2,
                           help="number of aggregated population objects")
    mesoscale.add_argument("--shards", type=int, default=4,
                           help="number of independent replica groups")
    mesoscale.add_argument("--process",
                           choices=["poisson", "pareto", "diurnal", "flash"],
                           default="poisson", help="arrival process shape")
    mesoscale.add_argument("--rate", type=float, default=2e-6,
                           help="ops per client per sim ms")
    mesoscale.add_argument("--protocol",
                           choices=["minbft", "pbft", "cft", "passive"],
                           default="minbft")
    mesoscale.add_argument("--duration", type=float, default=240_000.0)
    mesoscale.add_argument("--tick", type=float, default=100.0,
                           help="demand-sampling tick (sim ms)")
    mesoscale.add_argument("--max-inflight", type=int, default=64,
                           help="per-population concurrent submission cap")
    mesoscale.add_argument("--width", type=int, default=8)
    mesoscale.add_argument("--height", type=int, default=8)
    mesoscale.add_argument("--kill-shard", default=None, metavar="SHARD",
                           help="crash this shard mid-run and require "
                           "degraded-shard shedding to engage")
    mesoscale.set_defaults(fn=cmd_mesoscale)

    leases = sub.add_parser(
        "leases", help="compare quorum vs leased reads (P4)"
    )
    leases.add_argument("--seed", type=int, default=42)
    leases.add_argument("--protocol",
                        choices=["minbft", "pbft", "cft", "passive"],
                        default="minbft")
    leases.add_argument("--shards", type=int, default=2,
                        help="number of independent replica groups")
    leases.add_argument("--clients", type=int, default=1000,
                        help="modeled clients in the aggregated population")
    leases.add_argument("--rate", type=float, default=2e-4,
                        help="ops per client per sim ms")
    leases.add_argument("--read-ratio", type=float, default=0.9,
                        help="read share of the KV mix")
    leases.add_argument("--duration", type=float, default=240_000.0)
    leases.add_argument("--lease-duration", type=float, default=30_000.0,
                        help="lease validity / staleness bound (sim ms)")
    leases.add_argument("--renew-period", type=float, default=1_000.0,
                        help="primary grant-renewal period (sim ms)")
    leases.add_argument("--ranges", type=int, default=64,
                        help="number of key ranges leases are granted over")
    leases.add_argument("--width", type=int, default=8)
    leases.add_argument("--height", type=int, default=8)
    leases.set_defaults(fn=cmd_leases)

    experiments = sub.add_parser("experiments", help="list the experiment index")
    experiments.add_argument(
        "--verify", action="store_true",
        help="check the index against benchmarks/ and fail on drift",
    )
    experiments.set_defaults(fn=cmd_experiments)

    faultspace = sub.add_parser(
        "faultspace",
        help="run the C3 statistical fault-injection campaign",
    )
    faultspace.add_argument("--name", default="faultspace",
                            help="campaign name (directory under --out)")
    faultspace.add_argument("--system", choices=["resilient", "sharded"],
                            default="resilient")
    faultspace.add_argument("--protocol",
                            choices=["minbft", "pbft", "cft", "passive"],
                            default="minbft")
    faultspace.add_argument("--f", type=int, default=1,
                            help="fault threshold per replica group")
    faultspace.add_argument("--strata", nargs="*", default=None, metavar="KEY",
                            help="restrict to these strata "
                            "(e.g. node:crash link:link_fail)")
    faultspace.add_argument("--uniform", action="store_true",
                            help="add the population-weighted uniform estimator")
    faultspace.add_argument("--max-per-stratum", type=int, default=40,
                            help="per-stratum injection budget")
    faultspace.add_argument("--min-per-stratum", type=int, default=8,
                            help="floor before a stratum may stop early")
    faultspace.add_argument("--round-size", type=int, default=4,
                            help="trials released per stratum per round")
    faultspace.add_argument("--target-half-width", type=float, default=0.15,
                            help="CI half-width at which a stratum closes")
    faultspace.add_argument("--confidence", type=float, default=0.95)
    faultspace.add_argument("--method", choices=["wilson", "clopper-pearson"],
                            default="wilson", help="binomial interval method")
    faultspace.add_argument("--no-early-stop", action="store_true",
                            help="always spend the full per-stratum budget")
    faultspace.add_argument("--duration", type=float, default=60_000.0,
                            help="post-warmup observation horizon (sim ms)")
    faultspace.add_argument("--warmup", type=float, default=40_000.0)
    faultspace.add_argument("--campaign-seed", type=int, default=0)
    faultspace.add_argument("--workers", type=int, default=1,
                            help="parallel worker processes (1 = inline serial)")
    faultspace.add_argument("--out", default="campaigns",
                            help="root directory for campaign results")
    faultspace.add_argument("--fresh", action="store_true",
                            help="discard previous results for this campaign")
    faultspace.add_argument("--quiet", action="store_true",
                            help="suppress per-trial progress lines")
    faultspace.set_defaults(fn=cmd_faultspace)

    evolve = sub.add_parser(
        "evolve",
        help="evolutionary design-space exploration with Pareto decision support",
    )
    evolve.add_argument("--name", default="evolve",
                        help="campaign name (artifact directory)")
    evolve.add_argument("--runner", default="evolve",
                        choices=["evolve", "evolve_selftest"],
                        help="trial runner: full simulation or the analytic selftest")
    evolve.add_argument("--strategy", default="nsga2",
                        choices=["nsga2", "stratified"],
                        help="nsga2 search or the stratified-random baseline")
    evolve.add_argument("--population", type=int, default=12,
                        help="individuals per generation")
    evolve.add_argument("--generations", type=int, default=6)
    evolve.add_argument("--seeds", type=int, default=2,
                        help="CRN seed repetitions per individual")
    evolve.add_argument("--min-seeds", type=int, default=None,
                        help="repetitions before the CI-bound early kill "
                             "(default: all, i.e. no racing)")
    evolve.add_argument("--mutation-rate", type=float, default=0.25)
    evolve.add_argument("--crossover-rate", type=float, default=0.9)
    evolve.add_argument("--duration", type=float, default=90_000.0,
                        help="sim ms measured per trial")
    evolve.add_argument("--warmup", type=float, default=30_000.0)
    evolve.add_argument("--n-clients", type=int, default=1000,
                        help="modeled open-loop clients per trial")
    evolve.add_argument("--rate", type=float, default=2e-4,
                        help="ops per client per sim ms")
    evolve.add_argument("--campaign-seed", type=int, default=0)
    evolve.add_argument("--workers", type=int, default=1,
                        help="parallel trial workers per generation")
    evolve.add_argument("--trial-timeout", type=float, default=600.0)
    evolve.add_argument("--out", default="campaigns",
                        help="artifact root directory")
    evolve.add_argument("--fresh", action="store_true",
                        help="discard existing results for this name")
    evolve.add_argument("--quiet", action="store_true",
                        help="suppress per-trial progress lines")
    evolve.set_defaults(fn=cmd_evolve)

    pdes = sub.add_parser(
        "pdes",
        help="run a conservative parallel-simulation trial (P3)",
    )
    pdes.add_argument("--seed", type=int, default=42)
    pdes.add_argument("--domains", type=int, default=4,
                      help="number of simulation domains (shard regions)")
    pdes.add_argument("--shards-per-domain", type=int, default=1,
                      help="replica groups simulated inside each domain")
    pdes.add_argument("--workers", type=int, default=1,
                      help="worker processes hosting domain kernels "
                      "(1 = serial reference)")
    pdes.add_argument("--protocol",
                      choices=["minbft", "pbft", "cft", "passive"],
                      default="minbft")
    pdes.add_argument("--f", type=int, default=1,
                      help="fault threshold per replica group")
    pdes.add_argument("--duration", type=float, default=120_000.0,
                      help="post-warmup horizon (sim ms)")
    pdes.add_argument("--warmup", type=float, default=60_000.0)
    pdes.add_argument("--inter-domain-hops", type=int, default=100,
                      help="minimum NoC hops between domains; sets lookahead")
    pdes.add_argument("--window", type=float, default=None,
                      help="barrier window (sim ms, <= lookahead; "
                      "default: the lookahead itself)")
    pdes.add_argument("--tick", type=float, default=100.0,
                      help="traffic-generation tick (sim ms)")
    pdes.add_argument("--rate", type=float, default=2.0,
                      help="mean operations per domain per tick")
    pdes.add_argument("--max-inflight", type=int, default=64,
                      help="per-domain concurrent submission cap")
    pdes.add_argument("--width", type=int, default=6)
    pdes.add_argument("--height", type=int, default=6)
    pdes.add_argument("--verify", action="store_true",
                      help="re-run in the opposite mode (serial vs parallel) "
                      "and fail unless summaries are byte-identical")
    pdes.set_defaults(fn=cmd_pdes)

    campaign = sub.add_parser(
        "campaign", help="run sweep-scale experiment campaigns"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    campaign_sub.add_parser(
        "list", help="list built-in campaign definitions"
    ).set_defaults(fn=cmd_campaign_list)

    run = campaign_sub.add_parser("run", help="run or resume a campaign")
    run.add_argument("name", help="built-in campaign name (see campaign list)")
    run.add_argument("--workers", type=int, default=1,
                     help="parallel worker processes (1 = inline serial)")
    run.add_argument("--out", default="campaigns",
                     help="root directory for campaign results")
    run.add_argument("--seeds", type=int, default=None,
                     help="override seed repetitions per parameter point")
    run.add_argument("--campaign-seed", type=int, default=None,
                     help="master seed all trial seeds derive from")
    run.add_argument("--timeout", type=float, default=None,
                     help="per-trial wall-clock budget in seconds (0 disables)")
    run.add_argument("--retries", type=int, default=None,
                     help="retry budget per trial")
    run.add_argument("--limit", type=int, default=None,
                     help="run at most N pending trials (rest stay resumable)")
    run.add_argument("--fresh", action="store_true",
                     help="discard previous results for this campaign")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-trial progress lines")
    run.add_argument("--set", type=_parse_override, action="append", metavar="K=V",
                     help="override a base parameter (value parsed as JSON)")
    run.set_defaults(fn=cmd_campaign_run)

    report = campaign_sub.add_parser(
        "report", help="re-aggregate an existing campaign directory"
    )
    report.add_argument("name", help="campaign name (directory under --out)")
    report.add_argument("--out", default="campaigns",
                        help="root directory holding campaign results")
    report.set_defaults(fn=cmd_campaign_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
