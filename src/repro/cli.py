"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the package inventory and version.
``demo``
    Run a short end-to-end demo (the quickstart scenario) and print its
    summary.
``experiments``
    List the experiment index (id, claim, bench target).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

EXPERIMENTS = [
    ("E1", "Fig.1: redundancy per layer masks faults", "bench_e1_layers.py"),
    ("E2", "SIII: hybrids cut 3f+1 to 2f+1", "bench_e2_hybrid_bft.py"),
    ("E3", "SII.B: diversity vs common-mode failure", "bench_e3_diversity.py"),
    ("E4", "SII.C: rejuvenation vs APTs", "bench_e4_rejuvenation.py"),
    ("E5", "SII.D: threat-adaptive protocol switching", "bench_e5_adaptation.py"),
    ("E6", "SIII: hybrid complexity middle ground", "bench_e6_hybrid_complexity.py"),
    ("E7", "SII.E: consensual reconfiguration", "bench_e7_reconfig.py"),
    ("E8", "SII.A: passive vs active replication", "bench_e8_passive_active.py"),
    ("E9", "SII.A: replica elasticity (spawn like VMs)", "bench_e9_elasticity.py"),
    ("E10", "SII.C: partial rejuvenation vs device restart", "bench_e10_partial_rejuv.py"),
    ("E11", "SI: networked systems of SoCs", "bench_e11_spanning.py"),
    ("E12", "read-only fast path", "bench_e12_read_path.py"),
    ("A1", "ablation: the hybrid interface is the trust anchor", "bench_a1_hybrid_interface.py"),
    ("A2", "ablation: severity-detector tuning", "bench_a2_severity_ablation.py"),
]


def cmd_info(args: argparse.Namespace) -> int:
    """Print version and package inventory."""
    import repro

    print(f"repro {repro.__version__} — fault- and intrusion-resilient "
          f"manycore systems on a chip (DSN 2023 reproduction)")
    print("subsystems:", ", ".join(repro.__all__))
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """Run a short end-to-end scenario and print the outcome."""
    from repro.core import OrchestratorConfig, ResilientSystem
    from repro.core.rejuvenation import RejuvenationPolicy

    system = ResilientSystem(
        OrchestratorConfig(
            seed=args.seed,
            protocol=args.protocol,
            f=1,
            rejuvenation=RejuvenationPolicy(period=60_000),
        )
    )
    system.add_client("c0")
    system.start()
    system.run(args.duration)
    print(system.summary())
    return 0 if system.is_safe else 1


def cmd_experiments(args: argparse.Namespace) -> int:
    """List the experiment index."""
    width = max(len(e[0]) for e in EXPERIMENTS)
    for exp_id, claim, bench in EXPERIMENTS:
        print(f"{exp_id.ljust(width)}  {claim:55s} benchmarks/{bench}")
    print()
    print("run all:  pytest benchmarks/ --benchmark-only -s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault- and intrusion-resilient manycore systems on a chip",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package inventory").set_defaults(fn=cmd_info)

    demo = sub.add_parser("demo", help="run a short end-to-end scenario")
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--protocol", choices=["minbft", "pbft", "cft", "passive"],
                      default="minbft")
    demo.add_argument("--duration", type=float, default=300_000.0)
    demo.set_defaults(fn=cmd_demo)

    sub.add_parser("experiments", help="list the experiment index").set_defaults(
        fn=cmd_experiments
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
