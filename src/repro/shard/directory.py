"""Consistent-hash shard directory: keys → replica groups.

The sharded service layer (§II of the paper argues MPSoC parallelism is
what makes on-chip resilience affordable) partitions the keyspace across
independent replica groups.  The directory is the authoritative map: a
consistent-hash ring with virtual nodes, so adding or losing a shard
moves only ~1/N of the keyspace, and key→shard lookups are O(log V).

Two design constraints shape the implementation:

* **Determinism.**  Python's builtin ``hash()`` is salted per process, so
  ring positions must come from a stable hash (sha256 here).  The ring
  *is* randomized — but only through an explicit ``salt`` drawn from the
  simulation's seeded RNG (see :meth:`ShardDirectory.from_rng`), so the
  same master seed always yields the same key partition.
* **Degradation is advisory, not structural.**  Losing a whole shard's
  tiles does not re-map its keys (the data lived on those tiles; there is
  nothing to serve it from).  The directory instead *marks* the shard
  degraded so routers can fail affected operations fast while every other
  shard keeps serving — the shard-level analogue of a replica crash.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngStream


def _hash64(text: str) -> int:
    """Stable 64-bit hash of a string (process-independent)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardDirectory:
    """Maps keys to shard ids via a consistent-hash ring.

    Each shard owns ``vnodes`` points on a 64-bit ring; a key belongs to
    the shard owning the first point at or after the key's hash (wrapping
    at the top).  More virtual nodes smooth the keyspace split at the
    cost of a larger (still tiny) ring.
    """

    def __init__(self, shard_ids: Sequence[str], salt: int = 0, vnodes: int = 64) -> None:
        if not shard_ids:
            raise ValueError("directory needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError(f"duplicate shard ids in {list(shard_ids)!r}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.salt = salt
        self.vnodes = vnodes
        self._shard_ids: List[str] = list(shard_ids)
        ring: List[Tuple[int, str]] = []
        for shard_id in self._shard_ids:
            for v in range(vnodes):
                ring.append((_hash64(f"{salt}:ring:{shard_id}:{v}"), shard_id))
        ring.sort()
        self._ring = ring
        self._points = [point for point, _ in ring]
        self._degraded: Set[str] = set()

    @classmethod
    def from_rng(
        cls, shard_ids: Sequence[str], rng: "RngStream", vnodes: int = 64
    ) -> "ShardDirectory":
        """Build a directory whose ring layout derives from a seeded stream."""
        return cls(shard_ids, salt=rng.getrandbits(64), vnodes=vnodes)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> List[str]:
        """All shard ids, in declaration order."""
        return list(self._shard_ids)

    def shard_for(self, key: Any) -> str:
        """The shard owning ``key`` (degraded or not — ownership is fixed)."""
        h = _hash64(f"{self.salt}:key:{key}")
        index = bisect_right(self._points, h) % len(self._ring)
        return self._ring[index][1]

    def shards_for(self, keys: Iterable[Any]) -> Dict[str, List[Any]]:
        """Group keys by owning shard (for multi-key fan-out)."""
        grouped: Dict[str, List[Any]] = {}
        for key in keys:
            grouped.setdefault(self.shard_for(key), []).append(key)
        return grouped

    def balance(self, keys: Iterable[Any]) -> Dict[str, int]:
        """Key count per shard over a sample — a skew diagnostic."""
        counts = {shard_id: 0 for shard_id in self._shard_ids}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    # ------------------------------------------------------------------
    # Degradation bookkeeping
    # ------------------------------------------------------------------
    def mark_degraded(self, shard_id: str) -> None:
        """Flag a shard as unable to serve (e.g. below liveness quorum)."""
        self._require(shard_id)
        self._degraded.add(shard_id)

    def restore(self, shard_id: str) -> None:
        """Clear a shard's degraded flag once it can serve again."""
        self._require(shard_id)
        self._degraded.discard(shard_id)

    def is_degraded(self, shard_id: str) -> bool:
        """True if the shard is currently marked degraded."""
        self._require(shard_id)
        return shard_id in self._degraded

    def degraded_shards(self) -> List[str]:
        """Sorted list of degraded shard ids."""
        return sorted(self._degraded)

    def live_shards(self) -> List[str]:
        """Shard ids currently able to serve, in declaration order."""
        return [s for s in self._shard_ids if s not in self._degraded]

    def status(self) -> Dict[str, str]:
        """``{shard_id: "live"|"degraded"}`` for reports."""
        return {
            shard_id: "degraded" if shard_id in self._degraded else "live"
            for shard_id in self._shard_ids
        }

    def _require(self, shard_id: str) -> None:
        if shard_id not in self._shard_ids:
            raise KeyError(f"unknown shard {shard_id!r}")

    def __len__(self) -> int:
        return len(self._shard_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardDirectory(shards={len(self._shard_ids)}, vnodes={self.vnodes}, "
            f"degraded={sorted(self._degraded)})"
        )
