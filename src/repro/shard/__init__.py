"""`repro.shard` — the on-chip sharded service layer.

Partitions one keyspace across N independent replica groups placed on
disjoint tile regions of a single chip, with a consistent-hash directory,
a NoC-routed front end, and per-shard resilience machinery.  See
:class:`ShardedSystem` for the facade.
"""

from repro.shard.directory import ShardDirectory
from repro.shard.manager import Shard, ShardConfig, ShardedSystem
from repro.shard.placement import PlacementError, PlacementPlanner, ShardRegion
from repro.shard.router import (
    RouterClient,
    RouterClientConfig,
    RouterConfig,
    ShardRouter,
    ShardStats,
    TicketResult,
    default_key_of,
)

__all__ = [
    "PlacementError",
    "PlacementPlanner",
    "RouterClient",
    "RouterClientConfig",
    "RouterConfig",
    "Shard",
    "ShardConfig",
    "ShardDirectory",
    "ShardRegion",
    "ShardRouter",
    "ShardStats",
    "ShardedSystem",
    "TicketResult",
    "default_key_of",
]
