"""Disjoint, spatially-compact tile regions for shard replica groups.

Each shard's replicas must live on their *own* tiles: disjoint regions
are what make shard failures independent (a crashed region takes down
exactly one consensus group) and what lets rejuvenation or adaptation in
one shard proceed while the others keep serving.  Compactness matters
too — XY-routed mesh hops cost latency per hop, so a group scattered
across the chip pays more for every prepare/commit round.

:class:`PlacementPlanner` is the allocator: it tracks every tile it has
handed out and refuses overlapping spawns, both for its own greedy
allocations (disjoint by construction) and for caller-chosen layouts via
:meth:`PlacementPlanner.allocate_exact`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.noc.topology import Coord

if TYPE_CHECKING:  # pragma: no cover
    from repro.fabric.fabric import FpgaFabric
    from repro.soc.chip import Chip


class PlacementError(ValueError):
    """Raised when a shard region cannot be allocated as requested."""


@dataclass(frozen=True)
class ShardRegion:
    """An allocated, immutable set of tiles owned by one shard."""

    shard_id: str
    tiles: Tuple[Coord, ...]

    def __len__(self) -> int:
        return len(self.tiles)

    def diameter(self) -> int:
        """Largest pairwise Manhattan distance inside the region."""
        return max(
            (a.manhattan(b) for a in self.tiles for b in self.tiles),
            default=0,
        )

    def centroid_distance(self, coord: Coord) -> float:
        """Mean hop distance from ``coord`` to the region's tiles."""
        return sum(coord.manhattan(t) for t in self.tiles) / len(self.tiles)


@dataclass
class PlacementPlanner:
    """Allocates disjoint compact tile regions on one chip.

    The planner is purely deterministic: given the same chip state and
    the same allocation sequence it always produces the same regions
    (candidate tiles are considered in sorted coordinate order).

    When a ``fabric`` is supplied, only coordinates whose reconfigurable
    region is empty are candidates — a region mid-reconfiguration or
    already configured belongs to someone else even if its tile looks
    free.
    """

    chip: "Chip"
    fabric: Optional["FpgaFabric"] = None
    _allocated: Dict[Coord, str] = field(default_factory=dict)
    _regions: Dict[str, ShardRegion] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def region_of(self, shard_id: str) -> ShardRegion:
        """The region previously allocated to ``shard_id``."""
        try:
            return self._regions[shard_id]
        except KeyError:
            raise PlacementError(f"no region allocated for shard {shard_id!r}")

    def owner_of(self, coord: Coord) -> Optional[str]:
        """The shard owning a tile, or None if unallocated."""
        return self._allocated.get(coord)

    def free_candidates(self) -> List[Coord]:
        """Tiles still available for allocation, in sorted order."""
        if self.fabric is not None:
            pool = self.fabric.free_regions()
        else:
            pool = self.chip.free_tiles()
        return [c for c in pool if c not in self._allocated]

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, shard_id: str, n_tiles: int) -> ShardRegion:
        """Greedily grow a compact region of ``n_tiles`` free tiles.

        Seeded at the smallest free coordinate, the region grows one tile
        at a time, always taking the candidate minimizing total distance
        to the tiles already chosen (adjacent candidates first, so the
        region stays connected whenever the free set allows it).
        """
        if shard_id in self._regions:
            raise PlacementError(f"shard {shard_id!r} already has a region")
        if n_tiles < 1:
            raise PlacementError(f"region size must be >= 1, got {n_tiles}")
        candidates = self.free_candidates()
        if len(candidates) < n_tiles:
            raise PlacementError(
                f"shard {shard_id!r} needs {n_tiles} tiles but only "
                f"{len(candidates)} are free"
            )
        pool = set(candidates)
        seed = min(pool)
        chosen: List[Coord] = [seed]
        pool.remove(seed)
        while len(chosen) < n_tiles:
            adjacent = [c for c in pool if any(c.manhattan(t) == 1 for t in chosen)]
            frontier = adjacent or sorted(pool)
            best = min(
                frontier,
                key=lambda c: (sum(c.manhattan(t) for t in chosen), c),
            )
            chosen.append(best)
            pool.remove(best)
        return self._commit(shard_id, chosen)

    def allocate_exact(self, shard_id: str, tiles: Sequence[Coord]) -> ShardRegion:
        """Allocate a caller-chosen layout, refusing overlapping spawns."""
        if shard_id in self._regions:
            raise PlacementError(f"shard {shard_id!r} already has a region")
        if not tiles:
            raise PlacementError("region must contain at least one tile")
        if len(set(tiles)) != len(tiles):
            raise PlacementError(f"duplicate tiles in region for {shard_id!r}")
        available = set(self.free_candidates())
        for coord in tiles:
            owner = self._allocated.get(coord)
            if owner is not None:
                raise PlacementError(
                    f"tile {coord} requested for shard {shard_id!r} already "
                    f"belongs to shard {owner!r}"
                )
            if coord not in available:
                raise PlacementError(
                    f"tile {coord} requested for shard {shard_id!r} is not free"
                )
        return self._commit(shard_id, list(tiles))

    def release(self, shard_id: str) -> None:
        """Return a shard's tiles to the pool (e.g. after decommissioning)."""
        region = self.region_of(shard_id)
        for coord in region.tiles:
            del self._allocated[coord]
        del self._regions[shard_id]

    def _commit(self, shard_id: str, tiles: List[Coord]) -> ShardRegion:
        region = ShardRegion(shard_id, tuple(sorted(tiles)))
        for coord in region.tiles:
            self._allocated[coord] = shard_id
        self._regions[shard_id] = region
        return region
