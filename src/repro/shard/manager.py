"""`ShardedSystem`: many independent replica groups on one chip.

The facade mirrors :class:`~repro.core.orchestrator.ResilientSystem` but
deploys N replica groups on disjoint, compact tile regions, each with its
*own* resilience machinery — severity detector, rejuvenation scheduler,
and (optionally) adaptation controller.  Independence is the point: one
shard can escalate to PBFT or cycle through rejuvenation while the other
shards keep serving at full speed, and losing an entire shard's tiles
degrades 1/N of the keyspace instead of the whole service.

Failover is shard-granular: a periodic health monitor compares each
group's correct-replica count against its liveness quorum and flips the
directory's degraded flag, which makes every router fail operations on
that shard fast (no retransmit storms into a dead region) while traffic
to the surviving shards flows untouched.

Notes on the per-shard machinery:

* The default rejuvenation policy uses ``relocate=False`` — chip-wide
  relocation would walk replicas out of their shard's region.  Pass an
  explicit policy to override.
* Protocol escalation (e.g. minbft→pbft) grows the group by pulling
  extra free tiles from the chip, so leave headroom when sizing the mesh
  for adaptive shards.
* ``kill_shard`` stops the victim's maintenance machinery before
  crashing its tiles: a rejuvenation pass against a dead region would
  otherwise "resurrect" replicas on crashed tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import warnings

import dataclasses

from repro.bft.app import KeyValueStore, StateMachine
from repro.bft.group import (
    FAMILIES,
    GroupConfig,
    ReplicaGroup,
    protocol_config_for,
)
from repro.core.adaptation import AdaptationController, AdaptationPolicy
from repro.core.diversity import DiversityManager, VariantLibrary
from repro.core.rejuvenation import RejuvenationPolicy, RejuvenationScheduler
from repro.core.replication import ReplicationManager
from repro.core.severity import SeverityConfig, SeverityDetector, ThreatLevel
from repro.fabric.fabric import FpgaFabric
from repro.mesoscale.admission import AdmissionConfig, AdmissionController
from repro.mesoscale.population import ClientPopulation, PopulationConfig
from repro.shard.directory import ShardDirectory
from repro.shard.placement import PlacementPlanner, ShardRegion
from repro.shard.router import (
    RouterClient,
    RouterClientConfig,
    RouterConfig,
    ShardRouter,
)
from repro.sim.simulator import Simulator
from repro.sim.timers import PeriodicTimer
from repro.soc.chip import Chip, ChipConfig
from repro.workloads.workload import KVWorkload, read_only_predicate_of


@dataclass
class ShardConfig:
    """Everything needed to stand up a sharded resilient system."""

    seed: int = 0
    width: int = 8
    height: int = 8
    n_shards: int = 2
    protocol: str = "minbft"
    f: int = 1
    protocol_config: Optional[Any] = None
    #: Convenience knob: a :class:`~repro.bft.leases.LeaseConfig` applied
    #: to every shard's group (mutually exclusive with an explicit
    #: ``protocol_config``, which carries its own ``leases`` field).
    leases: Optional[Any] = None
    n_variants: int = 6
    n_vendors: int = 3
    app_factory: Callable[[], StateMachine] = KeyValueStore
    rejuvenation: Optional[RejuvenationPolicy] = None
    severity: Optional[SeverityConfig] = None
    adaptation: Optional[AdaptationPolicy] = None
    enable_rejuvenation: bool = True
    enable_adaptation: bool = False
    router: Optional[RouterConfig] = None
    health_check_period: float = 10_000.0
    vnodes: int = 64
    functionality: str = "service"
    #: Explicit shard ids (default ``s0..s{n-1}``).  The PDES layer names
    #: each domain's shards globally (``d0.s0``, ``d1.s0``, ...) so every
    #: domain hashes the same global id universe.
    shard_ids: Optional[List[str]] = None
    #: Fixed consistent-hash salt.  When None the salt is drawn from the
    #: system's own seeded RNG (the single-system default); PDES domains
    #: share one externally drawn salt so each domain's directory is the
    #: restriction of a single global ring.
    directory_salt: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.leases is not None and self.protocol_config is not None:
            raise ValueError(
                "pass leases or a full protocol_config, not both "
                "(protocol_config has its own leases field)"
            )
        if self.shard_ids is not None:
            if len(self.shard_ids) != self.n_shards:
                raise ValueError(
                    f"shard_ids has {len(self.shard_ids)} entries "
                    f"but n_shards={self.n_shards}"
                )


@dataclass
class Shard:
    """One shard: a replica group plus its private resilience machinery."""

    shard_id: str
    region: ShardRegion
    replication: ReplicationManager
    group: ReplicaGroup
    detector: SeverityDetector
    rejuvenation: Optional[RejuvenationScheduler]
    adaptation: Optional[AdaptationController]


class ShardedSystem:
    """N independent replica groups serving one partitioned keyspace."""

    def __init__(self, config: Optional[ShardConfig] = None) -> None:
        self.config = config or ShardConfig()
        cfg = self.config
        self.sim = Simulator(seed=cfg.seed)
        self.chip = Chip(self.sim, ChipConfig(width=cfg.width, height=cfg.height))
        self.fabric = FpgaFabric(self.sim, self.chip)
        self.library = VariantLibrary.generate(
            cfg.functionality, cfg.n_variants, cfg.n_vendors
        )
        self.fabric.register_variants(cfg.functionality, self.library.names())
        self.diversity = DiversityManager(self.library)
        shard_ids = cfg.shard_ids or [f"s{i}" for i in range(cfg.n_shards)]
        if cfg.directory_salt is not None:
            self.directory = ShardDirectory(
                shard_ids, salt=cfg.directory_salt, vnodes=cfg.vnodes
            )
        else:
            self.directory = ShardDirectory.from_rng(
                shard_ids, self.sim.rng.stream("shard.directory"), vnodes=cfg.vnodes
            )
        self.planner = PlacementPlanner(self.chip, self.fabric)
        family = FAMILIES[cfg.protocol]
        group_size = family.replicas_for(cfg.f)
        protocol_config = cfg.protocol_config
        if cfg.leases is not None:
            protocol_config = protocol_config_for(cfg.protocol, leases=cfg.leases)
        self.shards: Dict[str, Shard] = {}
        for shard_id in shard_ids:
            region = self.planner.allocate(shard_id, group_size)
            replication = ReplicationManager(
                self.chip, self.fabric, self.diversity,
                principal=f"replication-{shard_id}",
            )
            group = replication.deploy_group(
                GroupConfig(
                    protocol=cfg.protocol,
                    f=cfg.f,
                    group_id=shard_id,
                    app_factory=cfg.app_factory,
                    placement=list(region.tiles),
                    protocol_config=protocol_config,
                )
            )
            detector = SeverityDetector(group, [], cfg.severity)
            rejuvenation: Optional[RejuvenationScheduler] = None
            if cfg.enable_rejuvenation:
                # Relocation is off by default: the chip-wide scheduler
                # would move replicas out of the shard's region.
                policy = cfg.rejuvenation or RejuvenationPolicy(relocate=False)
                rejuvenation = RejuvenationScheduler(
                    group, self.fabric, self.diversity, policy,
                    principal=f"rejuvenation-{shard_id}",
                    detector=detector,
                )
            adaptation: Optional[AdaptationController] = None
            if cfg.enable_adaptation:
                adaptation = AdaptationController(group, detector, cfg.adaptation)
            self.shards[shard_id] = Shard(
                shard_id=shard_id,
                region=region,
                replication=replication,
                group=group,
                detector=detector,
                rejuvenation=rejuvenation,
                adaptation=adaptation,
            )
        self.routers: List[ShardRouter] = []
        self.clients: List[ClientPopulation] = []
        self.populations: List[ClientPopulation] = []
        self._health_timer: Optional[PeriodicTimer] = None

    # ------------------------------------------------------------------
    # Traffic attachment
    # ------------------------------------------------------------------
    def place_router(
        self, name: str, router_config: Optional[RouterConfig] = None
    ) -> ShardRouter:
        """Create, place, and fully bind one router front end.

        Each tenant/population gets its *own* router node (routers
        serialize message handling on their core, so a shared router
        would become the scaling bottleneck the shards exist to remove).
        The router is placed on the free tile nearest the mesh centre to
        keep worst-case hop counts down, and bound to every shard so the
        group's reconfiguration path and each shard's severity detector
        see it like any other client.
        """
        router = ShardRouter(
            name, self.directory, router_config or self.config.router
        )
        free = self.planner.free_candidates()
        if not free:
            free = [c for c in self.chip.free_tiles()
                    if self.planner.owner_of(c) is None]
        if not free:
            raise ValueError(f"no free tile to place router {name!r}")
        center = self.chip.topology.center()
        coord = min(free, key=lambda c: (c.manhattan(center), c))
        self.chip.place_node(router, coord)
        for shard_id, shard in self.shards.items():
            router.bind(
                shard_id, shard.group.members,
                shard.group.reply_quorum, shard.group.read_quorum,
                lease_reads=shard.group.leases_enabled,
            )
            shard.group.clients.append(router.binding_for(shard_id))
            shard.detector.clients.append(router.shard_stats(shard_id))
        self.routers.append(router)
        return router

    def attach_population(
        self,
        name: str,
        config: Optional[PopulationConfig] = None,
        router_config: Optional[RouterConfig] = None,
        admission: Optional[AdmissionConfig] = None,
    ) -> ClientPopulation:
        """Attach an aggregated client population behind its own router.

        The primary traffic API: one population object models
        ``config.n_clients`` clients (10^5–10^6 is the design point) with
        O(1) state, sampling demand from its workload's arrival process.
        Open-mode populations get an
        :class:`~repro.mesoscale.admission.AdmissionController` wired to
        the shard directory and every shard's severity detector, so
        demand for degraded or threatened shards is shed at the source;
        pass ``admission`` to tune the policy.  The population starts
        with the system (see :meth:`start`).

        When the workload classifies its own ops (``is_read``, as
        :class:`~repro.workloads.workload.KVWorkload` does) and the
        router config carries no explicit ``read_only_predicate``, the
        predicate is derived automatically — reads take the fast path
        (and the lease path, when leases are on) without per-bench
        plumbing.
        """
        cfg = config or PopulationConfig()
        rcfg = router_config or self.config.router
        if rcfg is None:
            rcfg = RouterConfig()
        if rcfg.read_only_predicate is None:
            workload = cfg.workload if cfg.workload is not None else KVWorkload()
            predicate = read_only_predicate_of(workload)
            if predicate is not None:
                rcfg = dataclasses.replace(rcfg, read_only_predicate=predicate)
        router = self.place_router(name, rcfg)
        controller: Optional[AdmissionController] = None
        if cfg.mode == "open":
            controller = AdmissionController(
                self.directory,
                {sid: shard.detector for sid, shard in self.shards.items()},
                admission or AdmissionConfig(),
                self.sim.rng.stream(f"mesoscale.{name}.admission"),
            )
        population = ClientPopulation(name, router, cfg, controller)
        self.clients.append(population)
        self.populations.append(population)
        return population

    def add_client(
        self,
        name: str,
        client_config: Optional[RouterClientConfig] = None,
        router_config: Optional[RouterConfig] = None,
    ) -> RouterClient:
        """Create a router + closed-loop driver pair for one tenant.

        .. deprecated::
            Per-client drivers are the legacy path; use
            :meth:`attach_population` (a closed-mode
            ``PopulationConfig(n_clients=1)`` reproduces this driver's
            event pattern exactly, and open mode scales to mesoscale
            client counts).  The old signature keeps working through
            this shim.
        """
        warnings.warn(
            "ShardedSystem.add_client is deprecated; use "
            "ShardedSystem.attach_population (closed mode, n_clients=1 "
            "for the same per-tenant behaviour)",
            DeprecationWarning,
            stacklevel=2,
        )
        router = self.place_router(name, router_config)
        driver = RouterClient(name, router, client_config)
        self.clients.append(driver)
        return driver

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, warmup: float = 60_000.0) -> None:
        """Spawn-settle, then start drivers and per-shard machinery.

        ``warmup`` must cover all groups' fabric spawns — they share one
        ICAP, so configuration time grows with the shard count.
        """
        self.sim.run(until=self.sim.now + warmup)
        for driver in self.clients:
            driver.start()
        for shard in self.shards.values():
            shard.detector.start()
            if shard.rejuvenation is not None:
                shard.rejuvenation.start()
        self._health_timer = PeriodicTimer(
            self.sim, self.config.health_check_period, self._check_health
        )

    def run(self, duration: float) -> None:
        """Advance the simulation."""
        self.sim.run(until=self.sim.now + duration)

    # ------------------------------------------------------------------
    # Shard-level failover
    # ------------------------------------------------------------------
    def _liveness_quorum(self, shard: Shard) -> int:
        """Minimum correct replicas for the group to make progress."""
        n = FAMILIES[shard.group.protocol].replicas_for(shard.group.f)
        return n - shard.group.f

    def _check_health(self) -> None:
        for shard_id, shard in self.shards.items():
            correct = len(shard.group.correct_replicas())
            degraded = self.directory.is_degraded(shard_id)
            if correct < self._liveness_quorum(shard):
                if not degraded:
                    self.directory.mark_degraded(shard_id)
                    self.chip.metrics.counter("shard.degraded_transitions").inc()
            elif degraded:
                self.directory.restore(shard_id)
                self.chip.metrics.counter("shard.restored_transitions").inc()

    def kill_shard(self, shard_id: str) -> None:
        """Crash every tile of one shard (the shard-failover scenario).

        Stops the shard's maintenance machinery first so rejuvenation
        cannot resurrect replicas on dead tiles; the health monitor then
        marks the shard degraded at its next tick.
        """
        shard = self.shards[shard_id]
        shard.detector.stop()
        if shard.rejuvenation is not None:
            shard.rejuvenation.stop()
        for name in shard.group.members:
            if self.chip.has_node(name):
                self.chip.tiles[self.chip.coord_of(name)].crash()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_safe(self) -> bool:
        """True while no shard recorded an SMR safety violation."""
        return all(s.group.safety.is_safe for s in self.shards.values())

    def shard_safe(self, shard_id: str) -> bool:
        """Safety of a single shard's group."""
        return self.shards[shard_id].group.safety.is_safe

    def completed_operations(self) -> int:
        """Total operations completed across all drivers."""
        return sum(c.completed for c in self.clients)

    def failed_operations(self) -> int:
        """Total operations failed across all drivers."""
        return sum(c.failures for c in self.clients)

    def shard_metrics(self, shard_id: str) -> Dict[str, object]:
        """A flat per-shard status/metrics record for reports."""
        shard = self.shards[shard_id]
        metrics = self.chip.metrics
        ops = metrics.counter(f"shard.{shard_id}.ops").value
        latency = metrics.histogram(f"shard.{shard_id}.latency")
        return {
            "shard": shard_id,
            "protocol": shard.group.protocol,
            "replicas": len(shard.group.members),
            "correct": len(shard.group.correct_replicas()),
            "status": self.directory.status()[shard_id],
            "threat": ThreatLevel(shard.detector.level).name,
            "ops": ops,
            "p50_latency": latency.percentile(50) if latency.count else 0.0,
            "p95_latency": latency.percentile(95) if latency.count else 0.0,
            "inflight": metrics.gauge(f"shard.{shard_id}.inflight").value,
            "safe": shard.group.safety.is_safe,
        }

    def summary(self) -> str:
        """One-line status for scripts (mirrors ResilientSystem)."""
        degraded = self.directory.degraded_shards()
        return (
            f"t={self.sim.now:.0f} shards={len(self.shards)} "
            f"protocol={self.config.protocol} f={self.config.f} "
            f"ops={self.completed_operations()} "
            f"degraded={len(degraded)} "
            f"safety={'SAFE' if self.is_safe else 'VIOLATED'}"
        )
