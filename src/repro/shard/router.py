"""The shard router: a client-facing front end over many replica groups.

A :class:`ShardRouter` is a placed NoC node (replicas only reply to names
the chip can route to) that accepts whole-service operations, consults
the :class:`~repro.shard.directory.ShardDirectory` for ownership, and
speaks the normal BFT client protocol to the owning group: primary-first
sends, quorum vote counting over matching replies, broadcast retransmit
with exponential backoff, primary-hint adoption from reply views.

Unlike :class:`~repro.bft.client.ClientNode` it can keep several sub-
operations in flight at once — a multi-key ``("mget", k1, k2, …)`` fans
out one sub-operation per key to each owning shard and completes when
every fragment has its quorum.  Operations against a shard the directory
has marked degraded fail fast instead of burning retransmit timeouts.

Per-shard service metrics (ops, latency histogram, in-flight depth) are
published through the chip's :class:`~repro.metrics.registry.MetricsRegistry`
under ``shard.<id>.*`` names, and per-shard liveness counters
(:class:`ShardStats`) expose the ``completed``/``timeouts`` attributes
the severity detector samples — the router stands in for a population of
clients, one pseudo-client per shard.

:class:`RouterClient` is the closed-loop workload driver: conceptually a
tenant application co-located on the router's tile, issuing one operation
at a time through :meth:`ShardRouter.submit`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Union

from repro.bft.client import OpFactory, default_op_factory
from repro.bft.leases import keys_of, stable_key_hash
from repro.bft.messages import ClientReply, ClientRequest, ReadNack
from repro.mesoscale.population import ClientPopulation, PopulationConfig
from repro.metrics.traffic import TrafficSource
from repro.shard.directory import ShardDirectory
from repro.sim.timers import Timeout
from repro.soc.chip import is_corrupted
from repro.soc.node import Node
from repro.workloads.workload import FactoryWorkload


def default_key_of(op: Any) -> Union[str, List[str]]:
    """Extract the routing key(s) from a KV-style operation tuple.

    ``("mget", k1, k2, …)`` routes per key (a list return means fan-out);
    every other recognised shape — ``("put", k, v)``, ``("get", k)``,
    ``("del", k)``, ``("cas", k, old, new)`` — routes on its first
    operand.
    """
    if isinstance(op, tuple) and op:
        if op[0] == "mget":
            keys = list(op[1:])
            if not keys:
                raise ValueError("mget needs at least one key")
            return keys
        if len(op) >= 2:
            return op[1]
    raise ValueError(f"cannot derive a routing key from operation {op!r}")


@dataclass
class RouterConfig:
    """Routing behaviour parameters (mirrors :class:`ClientConfig` where
    the semantics carry over)."""

    timeout: float = 30_000.0
    backoff_factor: float = 2.0
    max_timeout: float = 480_000.0
    max_attempts: int = 8
    key_of: Callable[[Any], Union[str, List[str]]] = default_key_of
    read_only_predicate: Optional[Callable[[Any], bool]] = None


@dataclass
class ShardStats:
    """Liveness counters for one (router, shard) pair.

    Exposes the ``completed``/``timeouts`` attributes a
    :class:`~repro.core.severity.SeverityDetector` samples from its
    client list, so each shard's detector sees only traffic aimed at
    that shard.
    """

    shard_id: str
    completed: int = 0
    timeouts: int = 0
    failed: int = 0
    rejected_degraded: int = 0


@dataclass
class TicketResult:
    """Outcome of one submitted operation."""

    ok: bool
    value: Any
    latency: float
    error: Optional[str] = None


@dataclass
class _ShardView:
    """The router's current picture of one replica group."""

    members: List[str]
    reply_quorum: int
    read_quorum: int
    primary_hint: int = 0
    lease_reads: bool = False

    def primary(self) -> str:
        return self.members[self.primary_hint % len(self.members)]


@dataclass
class _Ticket:
    """One submitted operation, possibly fanned out into sub-operations."""

    ticket_id: int
    op: Any
    started_at: float
    on_complete: Optional[Callable[[TicketResult], None]]
    multi: bool
    remaining: int = 0
    results: Dict[Any, Any] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)


@dataclass
class _SubOp:
    """One routed fragment: a BFT client exchange with a single shard."""

    rid: int
    ticket: _Ticket
    shard_id: str
    key: Any  # result slot for multi-key tickets (None for single ops)
    request: ClientRequest
    timeout: Timeout
    sent_at: float
    current_timeout: float
    attempts: int = 0
    votes: Dict[Any, Set[str]] = field(default_factory=dict)


class _RouterBinding:
    """Adapter registered in a group's client list.

    :meth:`ReplicaGroup.switch_protocol` reconfigures every attached
    client with the new membership and quorums; this shim forwards that
    call to the router's per-shard view so adaptation in one shard
    transparently re-points every router.
    """

    def __init__(self, router: "ShardRouter", shard_id: str) -> None:
        self.router = router
        self.shard_id = shard_id
        self.name = f"{router.name}:{shard_id}"

    def configure(
        self,
        replicas: List[str],
        reply_quorum: int,
        read_quorum: Optional[int] = None,
        lease_reads: bool = False,
    ) -> None:
        self.router.bind(
            self.shard_id, replicas, reply_quorum, read_quorum,
            lease_reads=lease_reads,
        )


class ShardRouter(Node, TrafficSource):
    """Routes operations to their owning replica group over the NoC."""

    def __init__(
        self,
        name: str,
        directory: ShardDirectory,
        config: Optional[RouterConfig] = None,
    ) -> None:
        Node.__init__(self, name)
        TrafficSource.__init__(self)
        self.directory = directory
        self.config = config or RouterConfig()
        self._views: Dict[str, _ShardView] = {}
        self.stats: Dict[str, ShardStats] = {}
        self._rid = 0
        self._ticket_seq = 0
        self._subops: Dict[int, _SubOp] = {}
        self._tickets: Dict[int, _Ticket] = {}
        self.failed = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # Shard bindings
    # ------------------------------------------------------------------
    def bind(
        self,
        shard_id: str,
        members: List[str],
        reply_quorum: int,
        read_quorum: Optional[int] = None,
        lease_reads: bool = False,
    ) -> None:
        """Attach (or re-point) this router to one shard's replica group."""
        if not members:
            raise ValueError(f"shard {shard_id!r} bound with no members")
        if reply_quorum < 1:
            raise ValueError("reply quorum must be >= 1")
        read_q = read_quorum if read_quorum is not None else reply_quorum
        view = self._views.get(shard_id)
        if view is None:
            self._views[shard_id] = _ShardView(
                list(members), reply_quorum, read_q, lease_reads=lease_reads
            )
        else:
            view.members = list(members)
            view.reply_quorum = reply_quorum
            view.read_quorum = read_q
            view.primary_hint %= len(view.members)
            view.lease_reads = lease_reads
        self.stats.setdefault(shard_id, ShardStats(shard_id))

    def binding_for(self, shard_id: str) -> _RouterBinding:
        """The adapter to append to the shard group's ``clients`` list."""
        if shard_id not in self._views:
            raise KeyError(f"router {self.name} has no binding for {shard_id!r}")
        return _RouterBinding(self, shard_id)

    def shard_stats(self, shard_id: str) -> ShardStats:
        """Per-shard liveness counters (a detector pseudo-client)."""
        return self.stats[shard_id]

    @property
    def bound_shards(self) -> List[str]:
        """Shard ids this router can reach."""
        return sorted(self._views)

    def serves_leased_reads(self, op: Any) -> bool:
        """True when every shard owning ``op``'s keys runs read leases.

        Admission layers use this to classify an operation *before*
        submitting it: a read the lease path can serve never enters the
        ordered log, so it may bypass ordered-inflight caps.
        """
        if keys_of(op) is None:
            return False
        try:
            keys = self.config.key_of(op)
        except ValueError:
            return False
        key_list = keys if isinstance(keys, list) else [keys]
        for k in key_list:
            view = self._views.get(self.directory.shard_for(k))
            if view is None or not view.lease_reads:
                return False
        return True

    # ------------------------------------------------------------------
    # Submitting operations
    # ------------------------------------------------------------------
    def submit(
        self, op: Any, on_complete: Optional[Callable[[TicketResult], None]] = None
    ) -> int:
        """Route one operation; ``on_complete`` fires with its outcome.

        Multi-key operations fan out one ordered sub-operation per key to
        each owning shard; the ticket completes when every fragment does.
        May complete synchronously (degraded-shard fast failure).
        """
        keys = self.config.key_of(op)
        ticket = _Ticket(
            ticket_id=self._ticket_seq,
            op=op,
            started_at=self.sim.now,
            on_complete=on_complete,
            multi=isinstance(keys, list),
        )
        self._ticket_seq += 1
        self._tickets[ticket.ticket_id] = ticket
        if ticket.multi:
            plan = [(self.directory.shard_for(k), ("get", k), k) for k in keys]
        else:
            plan = [(self.directory.shard_for(keys), op, None)]
        ticket.remaining = len(plan)
        for shard_id, sub_op, key in plan:
            self._issue(ticket, shard_id, sub_op, key)
        return ticket.ticket_id

    @property
    def inflight(self) -> int:
        """Sub-operations currently awaiting a quorum."""
        return len(self._subops)

    def _issue(self, ticket: _Ticket, shard_id: str, op: Any, key: Any) -> None:
        stats = self.stats.get(shard_id)
        view = self._views.get(shard_id)
        if view is None:
            ticket.errors.append(f"shard {shard_id} not bound")
            self._sub_done(ticket)
            return
        assert stats is not None
        predicate = self.config.read_only_predicate
        read_only = bool(predicate is not None and predicate(op))
        lease_target = self._lease_target(view, op) if read_only else None
        if self.directory.is_degraded(shard_id) and lease_target is None:
            # Lease-aware degraded handling: a leased replica can still
            # answer reads from local committed state while the group is
            # below its liveness quorum, so only lease-less operations
            # fail fast here.
            stats.rejected_degraded += 1
            self._counter(shard_id, "rejected_degraded").inc()
            ticket.errors.append(f"shard {shard_id} degraded")
            self._sub_done(ticket)
            return
        request = ClientRequest(
            self.name, self._rid, op,
            read_only=read_only,
            lease_read=lease_target is not None,
        )
        self._rid += 1
        sub = _SubOp(
            rid=request.rid,
            ticket=ticket,
            shard_id=shard_id,
            key=key,
            request=request,
            timeout=Timeout(
                self.sim, self.config.timeout, lambda r=request.rid: self._on_timeout(r)
            ),
            sent_at=self.sim.now,
            current_timeout=self.config.timeout,
        )
        self._subops[sub.rid] = sub
        self._gauge_inflight(shard_id).set(self._shard_inflight(shard_id))
        if lease_target is not None:
            # One NoC hop to the leaseholder nearest this router's tile;
            # a ReadNack (no covering lease) falls back to the quorum path.
            self.send(lease_target, request, request.wire_size())
        elif read_only:
            self.broadcast(view.members, request, request.wire_size())
        else:
            self.send(view.primary(), request, request.wire_size())
        sub.timeout.duration = sub.current_timeout
        sub.timeout.start()

    def _lease_target(self, view: _ShardView, op: Any) -> Optional[str]:
        """Pick the lease-read target: a per-key leaseholder, chosen from
        the live members ordered by NoC distance from this tile.

        Every member holds leases for every range (the primary grants
        uniformly), so the router keys the choice on the routing key's
        stable hash over the distance-sorted candidate list.  Sending all
        leased reads to the single nearest member measures *worse* than
        the quorum fast path at saturation — one serialized replica core
        becomes the group's read bottleneck — so the hash spread, not
        pure proximity, is what the P4 speedup rides on.  The router does
        not track grant state (it is primary-local soft state); a target
        whose lease lapsed answers with a ReadNack and the read falls
        back to the quorum path.
        """
        if not view.lease_reads:
            return None
        keys = keys_of(op)
        if keys is None:
            return None
        if self.chip is None:
            return None
        here = self.coord
        candidates = [m for m in view.members if self.chip.has_node(m)]
        if not candidates:
            return None
        candidates.sort(key=lambda m: (self.chip.coord_of(m).manhattan(here), m))
        return candidates[stable_key_hash(keys[0]) % len(candidates)]

    # ------------------------------------------------------------------
    # Reply and timeout handling
    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:
        if is_corrupted(message):
            return
        if isinstance(message, ReadNack):
            self._handle_read_nack(sender, message)
            return
        if not isinstance(message, ClientReply):
            return
        sub = self._subops.get(message.rid)
        if sub is None:
            return
        view = self._views[sub.shard_id]
        if sender != message.replica or sender not in view.members:
            return
        if sub.request.lease_read and not message.leased:
            return
        votes = sub.votes.setdefault(message.match_key(), set())
        votes.add(sender)
        if sub.request.lease_read:
            needed = 1
        elif sub.request.read_only:
            needed = view.read_quorum
        else:
            needed = view.reply_quorum
        if len(votes) >= needed:
            self._complete_sub(sub, message)

    def _handle_read_nack(self, sender: str, nack: ReadNack) -> None:
        """No covering lease at the target: fall back to the quorum path."""
        sub = self._subops.get(nack.rid)
        if sub is None or not sub.request.lease_read:
            return
        view = self._views[sub.shard_id]
        if sender != nack.replica or sender not in view.members:
            return
        self._counter(sub.shard_id, "lease_fallbacks").inc()
        sub.request = dataclasses.replace(sub.request, lease_read=False)
        sub.votes = {}
        if self.directory.is_degraded(sub.shard_id):
            # The lease attempt was the only path past a degraded shard.
            self.stats[sub.shard_id].rejected_degraded += 1
            self._counter(sub.shard_id, "rejected_degraded").inc()
            self._fail_sub(sub, f"shard {sub.shard_id} degraded")
            return
        self.broadcast(view.members, sub.request, sub.request.wire_size())

    def _on_timeout(self, rid: int) -> None:
        sub = self._subops.get(rid)
        if sub is None:
            return
        sub.attempts += 1
        self.timeouts += 1
        self.stats[sub.shard_id].timeouts += 1
        view = self._views[sub.shard_id]
        if self.directory.is_degraded(sub.shard_id) or sub.attempts >= self.config.max_attempts:
            self._fail_sub(sub, f"shard {sub.shard_id} unresponsive after "
                                f"{sub.attempts} attempt(s)")
            return
        if sub.request.read_only:
            # Fast-path stall: fall back to the ordered path, same rid.
            sub.request = dataclasses.replace(
                sub.request, read_only=False, lease_read=False
            )
            sub.votes = {}
        # Suspect the primary; broadcast so backups arm view-change timers.
        self.broadcast(view.members, sub.request, sub.request.wire_size())
        view.primary_hint += 1
        sub.current_timeout = min(
            sub.current_timeout * self.config.backoff_factor, self.config.max_timeout
        )
        sub.timeout.duration = sub.current_timeout
        sub.timeout.start()

    def _complete_sub(self, sub: _SubOp, reply: ClientReply) -> None:
        del self._subops[sub.rid]
        sub.timeout.cancel()
        view = self._views[sub.shard_id]
        view.primary_hint = reply.view % len(view.members)
        stats = self.stats[sub.shard_id]
        stats.completed += 1
        self._counter(sub.shard_id, "ops").inc()
        self._histogram(sub.shard_id, "latency").observe(self.sim.now - sub.sent_at)
        self._gauge_inflight(sub.shard_id).set(self._shard_inflight(sub.shard_id))
        ticket = sub.ticket
        if ticket.multi:
            ticket.results[sub.key] = reply.result
        else:
            ticket.results[None] = reply.result
        self._sub_done(ticket)

    def _fail_sub(self, sub: _SubOp, reason: str) -> None:
        del self._subops[sub.rid]
        sub.timeout.cancel()
        self.stats[sub.shard_id].failed += 1
        self._counter(sub.shard_id, "failed_ops").inc()
        self._gauge_inflight(sub.shard_id).set(self._shard_inflight(sub.shard_id))
        sub.ticket.errors.append(reason)
        self._sub_done(sub.ticket)

    def _sub_done(self, ticket: _Ticket) -> None:
        ticket.remaining -= 1
        if ticket.remaining > 0:
            return
        del self._tickets[ticket.ticket_id]
        latency = self.sim.now - ticket.started_at
        ok = not ticket.errors
        if ok:
            self.record_completion(self.sim.now, latency)
            if ticket.multi:
                value: Any = dict(ticket.results)
            else:
                value = ticket.results.get(None)
        else:
            self.failed += 1
            value = None
        result = TicketResult(
            ok=ok,
            value=value,
            latency=latency,
            error="; ".join(ticket.errors) if ticket.errors else None,
        )
        if ticket.on_complete is not None:
            ticket.on_complete(result)

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------
    def _shard_inflight(self, shard_id: str) -> int:
        return sum(1 for sub in self._subops.values() if sub.shard_id == shard_id)

    def _counter(self, shard_id: str, suffix: str):
        return self.chip.metrics.counter(f"shard.{shard_id}.{suffix}")

    def _histogram(self, shard_id: str, suffix: str):
        return self.chip.metrics.histogram(f"shard.{shard_id}.{suffix}")

    def _gauge_inflight(self, shard_id: str):
        return self.chip.metrics.gauge(f"shard.{shard_id}.inflight")


@dataclass
class RouterClientConfig:
    """Closed-loop driver parameters (think time, workload, bound)."""

    think_time: float = 100.0
    max_requests: Optional[int] = None
    op_factory: OpFactory = default_op_factory


class RouterClient(ClientPopulation):
    """A closed-loop workload driver submitting through a router.

    Not a NoC node itself: it models a tenant application co-located with
    its router, so the only on-chip traffic is the router's. One
    operation is in flight at a time; failures (degraded shard, exhausted
    retries) are counted and the loop continues — a real tenant retries
    other work even when part of the keyspace is down.

    Since the mesoscale engine landed this is a thin compatibility shell:
    a closed-mode :class:`~repro.mesoscale.population.ClientPopulation`
    of exactly one client, sharing the population's submission and
    measurement path while preserving the historical event pattern
    (issue → complete → think → issue) operation for operation.
    """

    def __init__(
        self,
        name: str,
        router: ShardRouter,
        config: Optional[RouterClientConfig] = None,
    ) -> None:
        self.client_config = config or RouterClientConfig()
        super().__init__(
            name,
            router,
            PopulationConfig(
                n_clients=1,
                mode="closed",
                think_time=self.client_config.think_time,
                max_requests=self.client_config.max_requests,
                workload=FactoryWorkload(
                    self.client_config.op_factory, name=f"{name}-ops"
                ),
            ),
        )
