"""Architectural hybrids: small trusted hardware components (paper §III).

The paper argues hybridization should sit in a "complexity middle ground":
special-purpose circuits (a USIG is "essentially a sequential circuit,
driven by the counter register and a few additional registers"), hardened
against accidental faults with ECC, below the complexity of a full
fetch-decode-execute core.  This package provides:

* :mod:`~repro.hybrids.registers` — PlainRegister, EccRegister (real
  Hamming SEC-DED), TmrRegister: the storage options for hybrid state,
  with bitflip injection hooks (experiment E6).
* :mod:`~repro.hybrids.usig` — the USIG from MinBFT (Veronese et al.):
  a monotonic counter bound to message digests by HMAC, providing the
  non-equivocation guarantee that cuts BFT replica cost to 2f+1.
* :mod:`~repro.hybrids.trinc` — TrInc-style trusted incrementer.
* :mod:`~repro.hybrids.a2m` — Attested Append-only Memory (Chun et al.).
* :mod:`~repro.hybrids.complexity` — gate-equivalent complexity estimates
  for each design point, the x-axis of the E6 trade-off.
* :mod:`~repro.hybrids.razor` — Razor-style timing-error detection
  (shadow latch + re-execution), the circuit-level passive-replication
  mechanism the paper discusses in §II.A.
"""

from repro.hybrids.a2m import A2M, A2MAttestation
from repro.hybrids.complexity import GateComplexity, estimate_complexity
from repro.hybrids.razor import RazorConfig, RazorStage, sweep_voltage
from repro.hybrids.registers import (
    EccRegister,
    PlainRegister,
    Register,
    RegisterError,
    TmrRegister,
    make_register,
)
from repro.hybrids.trinc import TrInc, TrIncAttestation
from repro.hybrids.usig import UI, Usig, UsigVerifier

__all__ = [
    "A2M",
    "A2MAttestation",
    "EccRegister",
    "GateComplexity",
    "PlainRegister",
    "RazorConfig",
    "RazorStage",
    "Register",
    "RegisterError",
    "TmrRegister",
    "TrInc",
    "TrIncAttestation",
    "UI",
    "Usig",
    "UsigVerifier",
    "estimate_complexity",
    "make_register",
    "sweep_voltage",
]
