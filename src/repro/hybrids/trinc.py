"""TrInc: a trusted incrementer (Levin et al., NSDI'09).

TrInc generalizes the USIG: the caller *chooses* the new counter value,
which must be >= the current one, and receives an attestation binding
``(old_counter, new_counter, payload)``.  Choosing ``new == old`` yields a
non-advancing attestation (useful for reads); gaps are allowed.  Like the
USIG it prevents equivocation: no two different payloads can ever be bound
to the same (old, new) interval twice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import KeyStore
from repro.crypto.mac import compute_mac, verify_mac
from repro.hybrids.registers import Register, RegisterError, make_register


@dataclass(frozen=True)
class TrIncAttestation:
    """Attestation of an increment: (device, old, new, HMAC over payload)."""

    device_id: str
    old_counter: int
    new_counter: int
    mac: bytes

    @property
    def size_bytes(self) -> int:
        """Wire size for message-cost accounting."""
        return 4 + 8 + 8 + len(self.mac)


class TrIncError(Exception):
    """Raised on monotonicity violations or corrupt internal state."""


class TrInc:
    """One trusted-incrementer device.

    The counter register family is pluggable like the USIG's, so the same
    E6 bitflip experiments apply.
    """

    def __init__(self, device_id: str, keystore: KeyStore, register_kind: str = "ecc") -> None:
        self.device_id = device_id
        self._secret = keystore.secret_for(device_id)
        self.counter_register: Register = make_register(register_kind, 64, 0)
        self.halted = False

    def attest(self, new_counter: int, payload: bytes) -> TrIncAttestation:
        """Advance (or hold) the counter and attest the interval + payload.

        Raises :class:`TrIncError` if ``new_counter`` is below the stored
        counter — the hybrid refuses to go backwards.
        """
        if self.halted:
            raise TrIncError(f"TrInc {self.device_id} is halted")
        try:
            old = self.counter_register.read()
        except RegisterError as exc:
            self.halted = True
            raise TrIncError(f"TrInc {self.device_id} counter uncorrectable") from exc
        if new_counter < old:
            raise TrIncError(
                f"TrInc {self.device_id}: counter must not regress ({new_counter} < {old})"
            )
        self.counter_register.write(new_counter)
        mac = compute_mac(self._secret, (self.device_id, old, new_counter, payload))
        return TrIncAttestation(self.device_id, old, new_counter, mac)


class TrIncVerifier:
    """Verification half, inside each node's trusted perimeter."""

    def __init__(self, keystore: KeyStore) -> None:
        self._keystore = keystore

    def verify(self, attestation: TrIncAttestation, payload: bytes) -> bool:
        """Check the attestation's HMAC binding."""
        secret = self._keystore.secret_for(attestation.device_id)
        return verify_mac(
            secret,
            (
                attestation.device_id,
                attestation.old_counter,
                attestation.new_counter,
                payload,
            ),
            attestation.mac,
        )
