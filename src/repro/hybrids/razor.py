"""Razor-style timing-error detection (paper §II.A).

"Razor integrates detection capabilities, originally for timing faults in
sequential logic, but also for power instability and side channels, and
reinjects stored state into the pipeline for re-execution.  Albeit
functionally transparent, users may observe timing differences and
anomalies caused by them."

This module reproduces that mechanism at the level the paper discusses
it: a pipeline stage protected by a shadow latch, running at a *fixed
clock*.  Scaling the supply voltage down cuts dynamic energy
quadratically but pushes the critical path into the timing margin,
raising the fault probability; Razor detects a fault with some coverage
and re-executes (a visible timing anomaly), while uncovered faults escape
as silent corruptions — the detector-coverage term that appears in the
passive-replication reliability model
(:func:`repro.analysis.reliability.standby`).

The voltage→(delay, fault-rate) mapping is the standard alpha-power-law
shape: delay rises as Vdd approaches the threshold voltage, while timing
slack (and hence fault probability under a fixed clock) collapses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.sim.rng import RngStream

V_NOMINAL = 1.0
V_THRESHOLD = 0.35


@dataclass
class RazorConfig:
    """One operating point of a Razor-protected stage.

    ``vdd`` is the supply voltage relative to nominal (1.0); the clock is
    fixed at the period that gives 10% slack at nominal voltage, so
    undervolting eats directly into the margin.  ``coverage`` is the
    probability the shadow latch catches a timing fault;
    ``reexec_penalty`` is the pipeline-flush cost in stage-delays.
    """

    vdd: float = 1.0
    coverage: float = 0.98
    reexec_penalty: float = 2.0

    def __post_init__(self) -> None:
        if not V_THRESHOLD < self.vdd <= 1.5:
            raise ValueError(f"vdd must be in ({V_THRESHOLD}, 1.5], got {self.vdd}")
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")
        if self.reexec_penalty < 0:
            raise ValueError("re-execution penalty must be >= 0")


def stage_delay(vdd: float, alpha: float = 1.4) -> float:
    """Critical-path delay at ``vdd``, normalized to 1.0 at nominal.

    Alpha-power law: delay ∝ Vdd / (Vdd - Vt)^alpha.
    """
    if vdd <= V_THRESHOLD:
        raise ValueError(f"vdd must exceed the threshold voltage {V_THRESHOLD}")
    nominal = V_NOMINAL / (V_NOMINAL - V_THRESHOLD) ** alpha
    return (vdd / (vdd - V_THRESHOLD) ** alpha) / nominal


def timing_fault_probability(vdd: float, slack_fraction: float = 0.3) -> float:
    """P(the critical path misses the clock edge) at ``vdd``.

    The clock period is fixed at ``(1 + slack_fraction)`` of the nominal
    delay.  Within-die delay variation is modelled as lognormal-ish: the
    fault probability rises smoothly once the mean path delay approaches
    the period, saturating at 1.
    """
    period = 1.0 + slack_fraction
    mean_delay = stage_delay(vdd)
    margin = period - mean_delay
    if margin <= 0:
        return 1.0
    # ~6% sigma of within-die variation: P(delay > period).
    sigma = 0.06 * mean_delay
    z = margin / sigma
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@dataclass
class RazorStats:
    """Outcome counters for a run of operations.

    Razor runs at a *fixed clock*: undervolting does not speed anything
    up — it cuts energy (E per op ∝ Vdd²) at the price of re-executions
    (time + energy) and, past the coverage, silent corruptions.
    """

    operations: int = 0
    detected_faults: int = 0
    silent_corruptions: int = 0
    total_delay: float = 0.0
    total_energy: float = 0.0

    @property
    def energy_per_correct_op(self) -> float:
        """The Razor figure of merit: energy divided by correct results."""
        correct = self.operations - self.silent_corruptions
        if correct <= 0:
            return float("inf")
        return self.total_energy / correct

    @property
    def mean_delay(self) -> float:
        """Average per-operation latency in clock periods (>= 1)."""
        if self.operations == 0:
            return 0.0
        return self.total_delay / self.operations


class RazorStage:
    """A Razor-protected pipeline stage executing abstract operations."""

    def __init__(self, config: Optional[RazorConfig] = None, rng: Optional[RngStream] = None) -> None:
        self.config = config or RazorConfig()
        self.rng = rng or RngStream(0, "razor")
        self.stats = RazorStats()
        self._period = 1.0  # fixed clock: one period per (clean) operation
        self._energy = self.config.vdd ** 2  # dynamic energy per operation
        self._p_fault = timing_fault_probability(self.config.vdd)

    @property
    def fault_probability(self) -> float:
        """Per-operation timing-fault probability at this operating point."""
        return self._p_fault

    def execute(self) -> Tuple[float, bool]:
        """Run one operation.

        Returns ``(delay, corrupted)``: the time the operation took
        (including any re-execution) and whether its result is silently
        corrupt (an undetected timing fault).
        """
        self.stats.operations += 1
        delay = self._period
        energy = self._energy
        corrupted = False
        if self.rng.bernoulli(self._p_fault):
            if self.rng.bernoulli(self.config.coverage):
                # Detected: re-execute — functionally transparent, but the
                # "timing difference" the paper mentions is real, and the
                # re-execution burns extra cycles and energy.
                self.stats.detected_faults += 1
                delay += self.config.reexec_penalty * self._period
                energy += self.config.reexec_penalty * self._energy
            else:
                self.stats.silent_corruptions += 1
                corrupted = True
        self.stats.total_delay += delay
        self.stats.total_energy += energy
        return delay, corrupted

    def run(self, operations: int) -> RazorStats:
        """Execute a batch and return the accumulated stats."""
        for _ in range(operations):
            self.execute()
        return self.stats


def sweep_voltage(
    voltages, operations: int = 20_000, coverage: float = 0.98, seed: int = 0
):
    """Evaluate operating points at a fixed clock.

    Returns ``[(vdd, p_fault, energy_per_correct_op, mean_delay, silent)]``
    — the classic Razor curve: energy per operation falls quadratically as
    Vdd drops, until re-executions (and, past the shadow latch's coverage,
    silent corruptions) dominate; the minimum sits *below* the worst-case
    voltage margin, which is Razor's entire point.
    """
    out = []
    for i, vdd in enumerate(voltages):
        stage = RazorStage(
            RazorConfig(vdd=vdd, coverage=coverage), RngStream(seed, f"razor.{i}")
        )
        stats = stage.run(operations)
        out.append(
            (vdd, stage.fault_probability, stats.energy_per_correct_op,
             stats.mean_delay, stats.silent_corruptions)
        )
    return out
