"""A2M: Attested Append-only Memory (Chun et al., SOSP'07).

A2M offers trusted *logs*: ``append`` binds a value to the next sequence
number of a named log and returns an attestation; ``lookup`` and ``end``
return attested views of committed entries.  Because the log is
append-only and attested, a compromised host cannot present different
histories to different observers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto.keys import KeyStore
from repro.crypto.mac import compute_mac, digest as payload_digest, verify_mac


@dataclass(frozen=True)
class A2MAttestation:
    """Attestation of one log entry: (device, log, seq, entry digest, MAC)."""

    device_id: str
    log_id: str
    sequence: int
    entry_digest: bytes
    mac: bytes

    @property
    def size_bytes(self) -> int:
        """Wire size for message-cost accounting."""
        return 4 + 4 + 8 + len(self.entry_digest) + len(self.mac)


class A2M:
    """One attested append-only memory device with multiple named logs."""

    def __init__(self, device_id: str, keystore: KeyStore, capacity_per_log: int = 4096) -> None:
        if capacity_per_log < 1:
            raise ValueError("log capacity must be >= 1")
        self.device_id = device_id
        self._secret = keystore.secret_for(device_id)
        self.capacity_per_log = capacity_per_log
        self._logs: Dict[str, List[bytes]] = {}
        self._totals: Dict[str, int] = {}

    def append(self, log_id: str, value: object) -> A2MAttestation:
        """Append a value to a log; returns its attestation.

        The log stores digests (as the hardware would), bounded by
        ``capacity_per_log`` with truncate-from-front semantics mirroring
        A2M's ``truncate`` operation driven implicitly by capacity.
        """
        log = self._logs.setdefault(log_id, [])
        entry = payload_digest(value)
        log.append(entry)
        self._totals[log_id] = self._totals.get(log_id, 0) + 1
        if len(log) > self.capacity_per_log:
            del log[0 : len(log) - self.capacity_per_log]
        sequence = self._totals[log_id]
        return self._attest(log_id, sequence, entry)

    def lookup(self, log_id: str, sequence: int) -> Optional[A2MAttestation]:
        """Attested read of entry ``sequence`` (1-based), or None if absent."""
        log = self._logs.get(log_id)
        if log is None:
            return None
        base = self._base_sequence(log_id)
        index = sequence - base - 1
        if not 0 <= index < len(log):
            return None
        return self._attest(log_id, sequence, log[index])

    def end(self, log_id: str) -> Optional[A2MAttestation]:
        """Attested view of the most recent entry, or None for empty logs."""
        log = self._logs.get(log_id)
        if not log:
            return None
        sequence = self._base_sequence(log_id) + len(log)
        return self._attest(log_id, sequence, log[-1])

    def _base_sequence(self, log_id: str) -> int:
        # Sequence numbers keep counting across truncation; the base is the
        # total ever appended minus the retained suffix.
        appended = self._totals.get(log_id, 0)
        retained = len(self._logs.get(log_id, []))
        return appended - retained

    def _attest(self, log_id: str, sequence: int, entry: bytes) -> A2MAttestation:
        mac = compute_mac(self._secret, (self.device_id, log_id, sequence, entry))
        return A2MAttestation(self.device_id, log_id, sequence, entry, mac)

    def append_count(self, log_id: str) -> int:
        """Total entries ever appended to a log."""
        return self._totals.get(log_id, 0)


class A2MVerifier:
    """Verification half for A2M attestations."""

    def __init__(self, keystore: KeyStore) -> None:
        self._keystore = keystore

    def verify(self, attestation: A2MAttestation) -> bool:
        """Check the attestation's HMAC."""
        secret = self._keystore.secret_for(attestation.device_id)
        return verify_mac(
            secret,
            (
                attestation.device_id,
                attestation.log_id,
                attestation.sequence,
                attestation.entry_digest,
            ),
            attestation.mac,
        )

    def matches(self, attestation: A2MAttestation, value: object) -> bool:
        """True if the attestation is valid *and* covers ``value``."""
        return (
            self.verify(attestation)
            and attestation.entry_digest == payload_digest(value)
        )
