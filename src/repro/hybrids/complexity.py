"""Gate-equivalent complexity estimates for hybrid design points (E6).

The paper (§III) frames hybridization as a complexity trade-off: a circuit
should be just complex enough to provide its guarantee robustly — plain
registers are minimal but fragile, ECC adds "extra bits and the logic
required for correction", and past some bound "software implementations
become preferable and hybridization amounts to providing an isolated
core".  To make that claim measurable we estimate each design point in
gate equivalents (GE, 2-input NAND units), using standard-cell rules of
thumb from the synthesis literature:

* D flip-flop          ≈ 6 GE
* 2-input XOR          ≈ 2.5 GE
* majority voter/bit   ≈ 5 GE (2xAND + OR variants)
* 64-bit incrementer   ≈ 64 x 3 GE (half-adder chain)
* HMAC-SHA256 core     ≈ 15,000 GE (compact iterative implementations
  report 11-22 kGE; we take a middle value)
* minimal RV32I core   ≈ 35,000 GE (e.g. SERV-class serial cores are far
  smaller, picoRV32-class ~25-40 kGE; we take a representative mid value,
  and add instruction/data SRAM mapped at 1 GE/bit x 16 KiB)
"""

from __future__ import annotations

from dataclasses import dataclass

GE_FLIPFLOP = 6.0
GE_XOR = 2.5
GE_VOTER_PER_BIT = 5.0
GE_INCREMENTER_PER_BIT = 3.0
GE_HMAC_CORE = 15_000.0
GE_SOFTCORE_LOGIC = 35_000.0
GE_SRAM_PER_BIT = 1.0
SOFTCORE_MEMORY_BITS = 16 * 1024 * 8  # 16 KiB of program/data memory


@dataclass(frozen=True)
class GateComplexity:
    """A complexity estimate broken into storage and logic."""

    component: str
    storage_ge: float
    logic_ge: float

    @property
    def total_ge(self) -> float:
        """Total gate-equivalents."""
        return self.storage_ge + self.logic_ge


def register_complexity(kind: str, width: int) -> GateComplexity:
    """Complexity of one register of ``width`` data bits in a family.

    plain: width flip-flops.
    ecc:   (width + r + 1) flip-flops plus encode/decode XOR trees —
           roughly one XOR per covered position per parity bit on each of
           the encode and decode paths.
    tmr:   3x flip-flops plus a per-bit majority voter.
    """
    if kind == "plain":
        return GateComplexity(f"plain[{width}]", width * GE_FLIPFLOP, 0.0)
    if kind == "ecc":
        from repro.hybrids.registers import _parity_bit_count

        r = _parity_bit_count(width)
        stored_bits = width + r + 1
        # Each parity bit covers about half the codeword; encode + decode.
        xor_count = 2 * (r + 1) * (stored_bits / 2)
        return GateComplexity(
            f"ecc[{width}+{r}+1]", stored_bits * GE_FLIPFLOP, xor_count * GE_XOR
        )
    if kind == "tmr":
        return GateComplexity(
            f"tmr[3x{width}]", 3 * width * GE_FLIPFLOP, width * GE_VOTER_PER_BIT
        )
    raise ValueError(f"unknown register kind {kind!r}")


def usig_complexity(register_kind: str, counter_width: int = 64) -> GateComplexity:
    """Complexity of a USIG built on the given counter register family.

    USIG = counter register (+protection) + incrementer + HMAC core +
    two 256-bit constant registers (secret key, replica id/padding).
    """
    counter = register_complexity(register_kind, counter_width)
    constants_ge = 2 * 256 * GE_FLIPFLOP
    logic = (
        counter.logic_ge
        + counter_width * GE_INCREMENTER_PER_BIT
        + GE_HMAC_CORE
    )
    return GateComplexity(
        f"usig/{register_kind}", counter.storage_ge + constants_ge, logic
    )


def softcore_complexity() -> GateComplexity:
    """Complexity of realizing the hybrid as software on an isolated core."""
    return GateComplexity(
        "softcore", SOFTCORE_MEMORY_BITS * GE_SRAM_PER_BIT, GE_SOFTCORE_LOGIC
    )


def estimate_complexity(design: str, counter_width: int = 64) -> GateComplexity:
    """Estimate a named design point.

    ``design`` ∈ {"usig-plain", "usig-ecc", "usig-tmr", "softcore"}.
    """
    if design == "softcore":
        return softcore_complexity()
    prefix = "usig-"
    if design.startswith(prefix):
        return usig_complexity(design[len(prefix):], counter_width)
    raise ValueError(f"unknown design {design!r}")
