"""Register storage options for hybrid state: plain, Hamming SEC-DED, TMR.

The paper's §III example: a USIG built on *plain* registers is minimal,
but "any bitflip in the counter will have catastrophic effects on the
consensus problem"; ECC registers "add extra bits and the logic required
for correction, which both increase the complexity of the circuit at the
benefit of tolerating a certain number of bitflips".  These classes make
that trade-off executable: a fault injector flips physical storage bits,
and each register family responds per its design.

The ECC implementation is a genuine extended Hamming (SEC-DED) code, not
an abstraction: values are encoded into a codeword with parity bits at
power-of-two positions plus an overall parity bit, and decode corrects
single errors and detects double errors from the actual syndrome.
"""

from __future__ import annotations

from typing import List, Optional


class RegisterError(Exception):
    """Raised when a register detects an uncorrectable error (DED case)."""


class Register:
    """Interface: a fixed-width storage element with bitflip injection.

    ``physical_bits`` is the number of *storage* bits an injector can
    target — data bits for a plain register, data+parity for ECC, 3x data
    for TMR.  Injectors flip uniformly across physical bits, so bigger
    codewords absorb proportionally more raw flips (as real silicon does).
    """

    def __init__(self, width: int, initial: int = 0) -> None:
        if width < 1:
            raise ValueError(f"register width must be >= 1, got {width}")
        self.width = width
        self._mask = (1 << width) - 1
        if initial & ~self._mask:
            raise ValueError(f"initial value {initial} does not fit in {width} bits")

    @property
    def physical_bits(self) -> int:
        """Number of physical storage bits (injection targets)."""
        raise NotImplementedError

    def read(self) -> int:
        """Read the stored value, applying the family's protection."""
        raise NotImplementedError

    def write(self, value: int) -> None:
        """Store a new value (re-encodes; clears accumulated flips)."""
        raise NotImplementedError

    def inject_bitflip(self, bit_index: int) -> None:
        """Flip one physical storage bit (fault injector entry point)."""
        raise NotImplementedError


class PlainRegister(Register):
    """Unprotected flip-flops: flips silently corrupt the value."""

    def __init__(self, width: int, initial: int = 0) -> None:
        super().__init__(width, initial)
        self._value = initial

    @property
    def physical_bits(self) -> int:
        return self.width

    def read(self) -> int:
        return self._value

    def write(self, value: int) -> None:
        self._value = value & self._mask

    def inject_bitflip(self, bit_index: int) -> None:
        if not 0 <= bit_index < self.width:
            raise ValueError(f"bit index {bit_index} outside width {self.width}")
        self._value ^= 1 << bit_index


def _parity_bit_count(data_bits: int) -> int:
    """Hamming parity bits r such that 2^r >= data_bits + r + 1."""
    r = 0
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


class EccRegister(Register):
    """Extended Hamming SEC-DED protected register.

    Layout: codeword positions are 1-indexed; positions that are powers of
    two hold parity bits; the rest hold data bits (LSB-first); position 0
    holds the overall parity bit.  ``read`` decodes:

    * syndrome == 0, overall parity ok   → clean, return data
    * syndrome != 0, overall parity bad  → single-bit error, corrected
    * syndrome != 0, overall parity ok   → double error: raise RegisterError
    * syndrome == 0, overall parity bad  → error in the parity bit itself,
      data is fine
    """

    def __init__(self, width: int, initial: int = 0) -> None:
        super().__init__(width, initial)
        self.parity_bits = _parity_bit_count(width)
        self.codeword_bits = width + self.parity_bits  # 1-indexed positions 1..n
        self._codeword: List[int] = []
        self._overall = 0
        self.corrected_count = 0
        self.detected_count = 0
        self.write(initial)

    @property
    def physical_bits(self) -> int:
        return self.codeword_bits + 1  # + overall parity bit

    # -- encoding ------------------------------------------------------
    def _data_positions(self) -> List[int]:
        return [p for p in range(1, self.codeword_bits + 1) if p & (p - 1) != 0]

    def write(self, value: int) -> None:
        value &= self._mask
        codeword = [0] * (self.codeword_bits + 1)  # index 0 unused inside
        data_positions = self._data_positions()
        for i, pos in enumerate(data_positions):
            codeword[pos] = (value >> i) & 1
        for r in range(self.parity_bits):
            parity_pos = 1 << r
            parity = 0
            for pos in range(1, self.codeword_bits + 1):
                if pos != parity_pos and pos & parity_pos:
                    parity ^= codeword[pos]
            codeword[parity_pos] = parity
        self._codeword = codeword
        self._overall = 0
        for pos in range(1, self.codeword_bits + 1):
            self._overall ^= codeword[pos]

    # -- decoding --------------------------------------------------------
    def read(self) -> int:
        syndrome = 0
        for pos in range(1, self.codeword_bits + 1):
            if self._codeword[pos]:
                syndrome ^= pos
        parity_all = 0
        for pos in range(1, self.codeword_bits + 1):
            parity_all ^= self._codeword[pos]
        parity_ok = parity_all == self._overall

        if syndrome == 0 and parity_ok:
            return self._extract()
        if syndrome != 0 and not parity_ok:
            # Single-bit error at codeword position `syndrome`: correct it.
            if syndrome <= self.codeword_bits:
                self._codeword[syndrome] ^= 1
                self.corrected_count += 1
                return self._extract()
            # Syndrome points outside the codeword: treat as detected.
            self.detected_count += 1
            raise RegisterError("uncorrectable error (invalid syndrome)")
        if syndrome != 0 and parity_ok:
            self.detected_count += 1
            raise RegisterError("double-bit error detected")
        # syndrome == 0, parity mismatch: the overall parity bit flipped.
        self._overall ^= 1
        self.corrected_count += 1
        return self._extract()

    def _extract(self) -> int:
        value = 0
        for i, pos in enumerate(self._data_positions()):
            value |= self._codeword[pos] << i
        return value

    def inject_bitflip(self, bit_index: int) -> None:
        if not 0 <= bit_index < self.physical_bits:
            raise ValueError(f"bit index {bit_index} outside {self.physical_bits} physical bits")
        if bit_index == self.codeword_bits:  # the overall parity bit
            self._overall ^= 1
        else:
            self._codeword[bit_index + 1] ^= 1


class TmrRegister(Register):
    """Triple modular redundancy: three plain copies, bitwise majority vote.

    Tolerates any number of flips as long as no *bit position* is hit in
    two copies.  Majority voting also self-identifies disagreeing copies,
    surfaced via ``mismatch_count`` for scrubbing policies.
    """

    def __init__(self, width: int, initial: int = 0) -> None:
        super().__init__(width, initial)
        self._copies = [initial, initial, initial]
        self.mismatch_count = 0

    @property
    def physical_bits(self) -> int:
        return self.width * 3

    def read(self) -> int:
        a, b, c = self._copies
        voted = (a & b) | (a & c) | (b & c)
        if not (a == b == c):
            self.mismatch_count += 1
            # Scrub: majority value is written back to all copies, as TMR
            # implementations with voter feedback do.
            self._copies = [voted, voted, voted]
        return voted

    def write(self, value: int) -> None:
        value &= self._mask
        self._copies = [value, value, value]

    def inject_bitflip(self, bit_index: int) -> None:
        if not 0 <= bit_index < self.physical_bits:
            raise ValueError(f"bit index {bit_index} outside {self.physical_bits} physical bits")
        copy_index, bit = divmod(bit_index, self.width)
        self._copies[copy_index] ^= 1 << bit


def make_register(kind: str, width: int, initial: int = 0) -> Register:
    """Factory: ``kind`` in {"plain", "ecc", "tmr"}."""
    families = {"plain": PlainRegister, "ecc": EccRegister, "tmr": TmrRegister}
    if kind not in families:
        raise ValueError(f"unknown register kind {kind!r}; expected one of {sorted(families)}")
    return families[kind](width, initial)
