"""USIG: Unique Sequential Identifier Generator (MinBFT, Veronese et al.).

The USIG is the canonical hardware hybrid: a tamper-proof monotonic
counter bound to message digests by an HMAC under a secret that never
leaves the trusted perimeter.  Its two-call interface provides

* ``create_ui(digest)`` — assign the *next* counter value to this digest
  and return a certificate ``UI = (id, counter, HMAC(secret, id||counter||digest))``;
* ``verify_ui(ui, digest)`` — check a certificate issued by any replica's
  USIG (verifiers share the per-replica secrets *inside* their own
  trusted perimeter, as in the original design).

The guarantee consumed by MinBFT: a compromised replica can still *ask*
its USIG to certify arbitrary messages, but it can never obtain two
different messages bound to the same counter value, nor a counter that
goes backwards — equivocation becomes detectable, which is what reduces
the replica bound from 3f+1 to 2f+1.

The counter is stored in a pluggable :class:`~repro.hybrids.registers.Register`
so experiment E6 can inject bitflips into plain vs ECC vs TMR storage and
measure the effect on consensus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.keys import KeyStore
from repro.crypto.mac import compute_mac, verify_mac
from repro.hybrids.registers import Register, RegisterError, make_register

COUNTER_WIDTH = 64
"""Width of the USIG counter register in bits."""


@dataclass(frozen=True)
class UI:
    """A USIG certificate: (issuer id, counter value, HMAC)."""

    replica_id: str
    counter: int
    mac: bytes

    @property
    def size_bytes(self) -> int:
        """Wire size (id is accounted at 4 bytes, counter 8, MAC 16)."""
        return 4 + 8 + len(self.mac)


class UsigError(Exception):
    """Raised when the USIG's internal state is detectably broken."""


class Usig:
    """One replica's USIG instance.

    Parameters
    ----------
    replica_id:
        The identity this USIG certifies for.
    keystore:
        The domain :class:`KeyStore`; the per-replica secret lives inside
        the trusted perimeter and is never handed to the replica software.
    register_kind:
        Storage family for the counter: "plain", "ecc", or "tmr" (E6).
    """

    def __init__(
        self,
        replica_id: str,
        keystore: KeyStore,
        register_kind: str = "ecc",
    ) -> None:
        self.replica_id = replica_id
        self._keystore = keystore
        self._secret = keystore.secret_for(replica_id)
        self.register_kind = register_kind
        self.counter_register: Register = make_register(register_kind, COUNTER_WIDTH, 0)
        self.create_count = 0
        self.halted = False

    def create_ui(self, digest: bytes) -> UI:
        """Certify ``digest`` with the next counter value.

        Raises :class:`UsigError` if the counter register reports an
        uncorrectable error (the hybrid fails *safe*: it halts rather than
        emit a certificate from corrupt state).
        """
        if self.halted:
            raise UsigError(f"USIG {self.replica_id} is halted")
        try:
            current = self.counter_register.read()
        except RegisterError as exc:
            self.halted = True
            raise UsigError(f"USIG {self.replica_id} counter uncorrectable: {exc}") from exc
        next_counter = current + 1
        self.counter_register.write(next_counter)
        self.create_count += 1
        mac = compute_mac(self._secret, (self.replica_id, next_counter, digest))
        return UI(self.replica_id, next_counter, mac)

    def peek_counter(self) -> int:
        """Current counter value (diagnostics; may raise on DED)."""
        return self.counter_register.read()

    def inject_bitflip(self, bit_index: int) -> None:
        """Fault-injector entry point: flip one physical counter bit."""
        self.counter_register.inject_bitflip(bit_index)

    @property
    def physical_bits(self) -> int:
        """Physical storage bits of the counter (injection surface)."""
        return self.counter_register.physical_bits


class UsigVerifier:
    """The verification half of the USIG, inside each node's perimeter.

    Tracks the highest counter seen per issuer so that protocol layers can
    enforce the FIFO/no-gap rule MinBFT requires (``expect_sequential``).
    """

    def __init__(self, keystore: KeyStore) -> None:
        self._keystore = keystore
        self._highest_seen: dict = {}

    def verify_ui(self, ui: UI, digest: bytes) -> bool:
        """Check the HMAC binding of (issuer, counter, digest)."""
        secret = self._keystore.secret_for(ui.replica_id)
        return verify_mac(secret, (ui.replica_id, ui.counter, digest), ui.mac)

    def accept_sequential(self, ui: UI, digest: bytes) -> bool:
        """Verify *and* enforce the counter is exactly highest_seen + 1.

        Returns False (without advancing state) for invalid MACs, gaps,
        duplicates, or regressions.  This is the check that turns a
        bitflipped plain-register counter into a *detected* consensus
        stall rather than silent divergence.
        """
        if not self.verify_ui(ui, digest):
            return False
        expected = self._highest_seen.get(ui.replica_id, 0) + 1
        if ui.counter != expected:
            return False
        self._highest_seen[ui.replica_id] = ui.counter
        return True

    def highest_seen(self, replica_id: str) -> int:
        """Highest counter accepted from an issuer (0 if none)."""
        return self._highest_seen.get(replica_id, 0)

    def reset_issuer(self, replica_id: str, counter: Optional[int] = None) -> None:
        """Re-align an issuer's expected counter after rejuvenation."""
        if counter is None:
            self._highest_seen.pop(replica_id, None)
        else:
            self._highest_seen[replica_id] = counter
