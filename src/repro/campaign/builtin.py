"""Ready-made campaign definitions for ``python -m repro campaign``.

Three built-ins, graded by size:

* ``throughput`` — the protocol suite × f × 5 seeds service-throughput
  sweep (20 trials): the paper's SIII cost story at campaign scale.
* ``rejuv-apt``  — four named rejuvenation policies × 5 seeds of the
  §II.C survival race (20 trials): a ``zip``-mode example where each
  policy is a hand-picked (period, diversify, relocate) tuple.
* ``smoke``      — 2 protocols × 4 seeds with a short horizon (8 trials):
  small enough for CI to run with 2 workers on every push.
* ``shard-scaling`` — 3 shard counts × 3 seeds of the C2 throughput
  story: the same aggregate client load over 1, 2, then 4 independent
  replica groups (``repro.shard``), committed ops scaling near-linearly.
* ``consensus-batching`` — batch size × client window sweep of the P2
  consensus hot path on PBFT and MinBFT: how far request batching and
  pipelined agreement lift committed ops/sec over the closed loop.
* ``mesoscale`` — arrival process × population size sweep of the C4
  aggregated-traffic engine: 10^5–5×10^5 modeled clients per trial
  behind admission control on a 4-shard system.
* ``leased-reads`` — the P4 read-path sweep: leases on/off × read ratio
  on PBFT and MinBFT, an aggregated population at a read-heavy mix —
  what single-hop leased reads buy over the f+1 quorum fast path.
* ``pdes-scaling`` — domain-count sweep of the P3 conservative PDES:
  the same per-domain workload over 1, 2, then 4 lookahead-synchronized
  domains, with the serial-vs-parallel byte-identity check folded in as
  a metric.
* ``scaling``    — 20 deliberately I/O-bound selftest trials used to
  measure the executor's parallel speedup.  Simulation trials are
  CPU-bound, so their speedup needs as many cores as workers; this
  campaign's trials mostly wait, so overlap is visible even on a
  single-core machine.

Each definition is a factory so the CLI can override seed counts and base
parameters without mutating shared state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.campaign.spec import CampaignSpec


def _throughput(n_seeds: int = 5, campaign_seed: int = 0) -> CampaignSpec:
    return CampaignSpec(
        name="throughput",
        runner="throughput",
        mode="grid",
        axes={
            "protocol": ["minbft", "pbft", "cft", "passive"],
            "f": [1],
        },
        base={"duration": 600_000.0, "n_clients": 2, "think_time": 100.0},
        n_seeds=n_seeds,
        campaign_seed=campaign_seed,
        description="service throughput: protocol suite at f=1",
    )


def _rejuv_apt(n_seeds: int = 5, campaign_seed: int = 0) -> CampaignSpec:
    return CampaignSpec(
        name="rejuv-apt",
        runner="rejuv_apt",
        mode="zip",
        axes={
            "policy": ["none", "restart@40k", "diverse@40k", "diverse+relocate@10k"],
            "period": [0, 40_000.0, 40_000.0, 10_000.0],
            "diversify": [False, False, True, True],
            "relocate": [False, False, False, True],
        },
        base={
            "horizon": 600_000.0,
            "mean_effort": 120_000.0,
            "reuse_factor": 0.25,
            "f": 1,
        },
        n_seeds=n_seeds,
        campaign_seed=campaign_seed,
        description="rejuvenation policy vs APT survival race",
    )


def _shard_scaling(n_seeds: int = 3, campaign_seed: int = 0) -> CampaignSpec:
    return CampaignSpec(
        name="shard-scaling",
        runner="shard_scaling",
        mode="grid",
        axes={"n_shards": [1, 2, 4]},
        base={
            "duration": 240_000.0,
            "n_clients": 8,
            "think_time": 50.0,
            "width": 8,
            "height": 8,
        },
        n_seeds=n_seeds,
        campaign_seed=campaign_seed,
        trial_timeout=600.0,
        description="C2 throughput scaling: 1→2→4 shards, fixed client load",
    )


def _consensus_batching(n_seeds: int = 3, campaign_seed: int = 0) -> CampaignSpec:
    return CampaignSpec(
        name="consensus-batching",
        runner="consensus_batching",
        mode="grid",
        axes={
            "protocol": ["pbft", "minbft"],
            "batch_size": [1, 4, 8],
            "max_outstanding": [1, 16],
        },
        base={
            "duration": 240_000.0,
            "n_clients": 4,
            "think_time": 100.0,
            "max_inflight": 8,
            # Without a delay bound, only a full batch dispatches — a
            # closed-loop window smaller than batch_size would stall.
            "batch_delay": 200.0,
            "f": 1,
        },
        n_seeds=n_seeds,
        campaign_seed=campaign_seed,
        trial_timeout=600.0,
        description="P2 hot path: batch size x client window, pbft + minbft",
    )


def _mesoscale(n_seeds: int = 3, campaign_seed: int = 0) -> CampaignSpec:
    return CampaignSpec(
        name="mesoscale",
        runner="mesoscale",
        mode="grid",
        axes={
            "process": ["poisson", "pareto", "flash"],
            "n_clients": [100_000, 500_000],
        },
        base={
            "duration": 240_000.0,
            "warmup": 60_000.0,
            "n_populations": 2,
            "n_shards": 4,
            "rate_per_client": 2e-6,
            "tick": 100.0,
            "max_inflight": 64,
            "width": 8,
            "height": 8,
        },
        n_seeds=n_seeds,
        campaign_seed=campaign_seed,
        trial_timeout=600.0,
        description="C4 mesoscale traffic: arrival process x population size",
    )


def _leased_reads(n_seeds: int = 3, campaign_seed: int = 0) -> CampaignSpec:
    return CampaignSpec(
        name="leased-reads",
        runner="leased_reads",
        mode="grid",
        axes={
            "protocol": ["pbft", "minbft"],
            "leases": [0, 1],
            "read_ratio": [0.5, 0.9],
        },
        base={
            "duration": 240_000.0,
            "warmup": 60_000.0,
            "n_shards": 2,
            "n_clients": 1000,
            "rate_per_client": 2e-4,
            "max_inflight": 32,
            "queue_limit": 2048,
            "key_space": 64,
            "width": 8,
            "height": 8,
        },
        n_seeds=n_seeds,
        campaign_seed=campaign_seed,
        trial_timeout=600.0,
        description="P4 read path: leases on/off x read ratio, pbft + minbft",
    )


def _faultspace(n_seeds: int = 12, campaign_seed: int = 0) -> CampaignSpec:
    """Fixed-size fault-space sweep (no early stopping).

    ``n_seeds`` is the per-stratum draw budget — each seed repetition of
    a stratum point is one sampled injection.  This is the fixed-size
    baseline the sequential ``repro faultspace`` driver is measured
    against; run it through ``campaign run`` for an exhaustive sweep at
    a fixed budget, or use the CLI driver for CI-driven early stopping.
    """
    from repro.faultspace.driver import FaultspaceConfig, build_spec

    return build_spec(
        FaultspaceConfig(
            max_per_stratum=n_seeds,
            min_per_stratum=min(n_seeds, 8),
            campaign_seed=campaign_seed,
            duration=45_000.0,
            warmup=40_000.0,
        )
    )


def _pdes_scaling(n_seeds: int = 3, campaign_seed: int = 0) -> CampaignSpec:
    return CampaignSpec(
        name="pdes-scaling",
        runner="pdes",
        mode="grid",
        axes={"n_domains": [1, 2, 4]},
        base={
            "duration": 60_000.0,
            "warmup": 60_000.0,
            "shards_per_domain": 1,
            "rate_per_tick": 1.0,
            "tick": 100.0,
            "width": 6,
            "height": 6,
            # Trials run serially inside pool workers; the P3 bench owns
            # the wall-clock story.  verify re-runs each point in
            # parallel mode and reports byte_identical.
            "workers": 1,
            "verify": 1,
        },
        n_seeds=n_seeds,
        campaign_seed=campaign_seed,
        trial_timeout=600.0,
        description="P3 conservative PDES: domain-count sweep + identity check",
    )


def _smoke(n_seeds: int = 4, campaign_seed: int = 0) -> CampaignSpec:
    return CampaignSpec(
        name="smoke",
        runner="throughput",
        mode="grid",
        axes={"protocol": ["minbft", "cft"]},
        base={"duration": 120_000.0, "n_clients": 1},
        n_seeds=n_seeds,
        campaign_seed=campaign_seed,
        trial_timeout=120.0,
        description="tiny CI smoke sweep (2 protocols x 4 seeds)",
    )


def _scaling(n_seeds: int = 4, campaign_seed: int = 0) -> CampaignSpec:
    return CampaignSpec(
        name="scaling",
        runner="selftest",
        mode="grid",
        axes={"batch": [0, 1, 2, 3, 4]},
        base={"sleep": 0.2, "draws": 1000},
        n_seeds=n_seeds,
        campaign_seed=campaign_seed,
        trial_timeout=60.0,
        description="executor speedup check: 20 I/O-bound trials",
    )


BUILTIN_CAMPAIGNS: Dict[str, Callable[..., CampaignSpec]] = {
    "throughput": _throughput,
    "rejuv-apt": _rejuv_apt,
    "scaling": _scaling,
    "shard-scaling": _shard_scaling,
    "consensus-batching": _consensus_batching,
    "mesoscale": _mesoscale,
    "leased-reads": _leased_reads,
    "faultspace": _faultspace,
    "pdes-scaling": _pdes_scaling,
    "smoke": _smoke,
}


def build_campaign(
    name: str,
    n_seeds: Optional[int] = None,
    campaign_seed: Optional[int] = None,
    base_overrides: Optional[Dict[str, Any]] = None,
) -> CampaignSpec:
    """Instantiate a built-in campaign, optionally overriding knobs.

    ``base_overrides`` merges into the spec's fixed parameters (e.g.
    ``{"duration": 60000}`` to shorten trials).  Overrides change the
    spec hash, so an overridden run gets its own trial identities.
    """
    try:
        factory = BUILTIN_CAMPAIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; available: "
            f"{', '.join(sorted(BUILTIN_CAMPAIGNS))}"
        )
    kwargs: Dict[str, Any] = {}
    if n_seeds is not None:
        kwargs["n_seeds"] = n_seeds
    if campaign_seed is not None:
        kwargs["campaign_seed"] = campaign_seed
    spec = factory(**kwargs)
    if base_overrides:
        spec.base.update(base_overrides)
    return spec
