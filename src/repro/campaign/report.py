"""Campaign aggregation: seeds in, mean/stddev/95% CI out.

The report layer reads the store's successful records, groups the seed
repetitions of each parameter point, and produces two artifacts:

* ``summary.json`` — machine-readable aggregates.  Deliberately excludes
  wall times and attempt counts so the file is **byte-identical** for a
  fixed spec and campaign seed no matter how the run was scheduled,
  parallelized, interrupted, or resumed — a property the resume tests
  pin down.
* ``report.txt`` — the human table, rendered through the same
  :class:`repro.metrics.Table` machinery every bench uses.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.campaign.spec import CampaignSpec, canonical_json
from repro.campaign.store import ResultStore
from repro.metrics.stats import summarize
from repro.metrics.tables import Table


def aggregate(spec: CampaignSpec, records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Group successful trial records by parameter point and summarize.

    Returns the ``summary.json`` payload: spec identity plus one group
    per swept point, in sweep order, each with per-metric statistics
    across its seed repetitions.
    """
    order = {canonical_json(point): i for i, point in enumerate(spec.points())}
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        grouped.setdefault(canonical_json(record["params"]), []).append(record)

    groups = []
    for key in sorted(grouped, key=lambda k: (order.get(k, len(order)), k)):
        bucket = sorted(grouped[key], key=lambda r: r.get("seed_index", 0))
        metric_names = sorted({m for r in bucket for m in r.get("metrics", {})})
        groups.append(
            {
                "params": json.loads(key),
                "n_seeds": len(bucket),
                "metrics": {
                    name: summarize(
                        [
                            r["metrics"][name]
                            for r in bucket
                            if name in r.get("metrics", {})
                        ]
                    )
                    for name in metric_names
                },
            }
        )
    return {
        "campaign": spec.name,
        "runner": spec.runner,
        "spec_hash": spec.spec_hash(),
        "campaign_seed": spec.campaign_seed,
        "n_trials_expected": spec.n_trials,
        "n_trials_ok": len(records),
        "groups": groups,
    }


def _fmt(value: float) -> str:
    """Compact numeric cell."""
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def render_report(spec: CampaignSpec, summary: Dict[str, Any]) -> str:
    """Render the aggregate as a fixed-width table (``mean ±ci95`` cells)."""
    axis_names = sorted(spec.axes) if spec.axes else []
    metric_names = sorted(
        {name for group in summary["groups"] for name in group["metrics"]}
    )
    table = Table(
        f"campaign:{spec.name}",
        axis_names + metric_names,
        title=(
            f"{spec.description or spec.runner} — "
            f"{summary['n_trials_ok']}/{summary['n_trials_expected']} trials, "
            f"{spec.n_seeds} seeds/point, spec {summary['spec_hash']}"
        ),
    )
    for group in summary["groups"]:
        row: List[Any] = [group["params"].get(a, "") for a in axis_names]
        for name in metric_names:
            stats = group["metrics"].get(name)
            if stats is None:
                row.append("-")
            elif stats["n"] > 1 and stats["ci95"] > 0:
                row.append(f"{_fmt(stats['mean'])} ±{_fmt(stats['ci95'])}")
            else:
                row.append(_fmt(stats["mean"]))
        table.add_row(row)
    return table.render()


def write_summary(
    store: ResultStore, spec: Optional[CampaignSpec] = None
) -> Dict[str, Any]:
    """Aggregate the store and write ``summary.json`` + ``report.txt``.

    Returns the summary payload.  ``spec`` defaults to the store's spec.
    """
    spec = spec or store.spec
    summary = aggregate(spec, store.ok_records())
    store.summary_path.write_text(
        json.dumps(summary, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    report = render_report(spec, summary)
    store.report_path.write_text(report + "\n", encoding="utf-8")
    return summary
