"""Parallel campaign execution with timeouts, retries, and crash recovery.

The executor drains the spec's pending trials (those without an ``ok``
record in the store) through a :class:`concurrent.futures.ProcessPoolExecutor`:

* **per-trial timeout** — enforced *inside* the worker with a SIGALRM
  interval timer, so a runaway simulation is actually interrupted rather
  than merely abandoned (on platforms without ``SIGALRM`` the timeout is
  best-effort disabled);
* **bounded retries** — a failed or timed-out trial is re-queued until its
  attempt budget (``spec.max_retries`` + 1) is exhausted; every attempt is
  recorded in the store, so flakiness is visible, not silent;
* **worker-crash recovery** — a worker dying (OOM-kill, segfault,
  ``os._exit``) breaks the whole pool; the executor rebuilds the pool,
  charges one attempt to each trial that was in flight (the crasher is
  unattributable, so the whole wave pays), and re-queues the survivors.
  Pool rebuilds are bounded so a deterministic crasher terminates;
* **live progress** — one line per finished attempt through a pluggable
  callback;
* **trial memoization** — identical ``(runner, params, seed)`` trial
  specs execute once: duplicates (including in-flight duplicates in the
  pool) are served from a cache and recorded as ``cached`` ok records,
  with the hit count surfaced in the run stats.  The evolutionary driver
  shares one cache across generations so re-visited genomes cost zero
  trials.

``workers <= 1`` runs trials inline in the calling process — no pool, no
pickling — which is both the honest serial baseline for speedup
measurements and the mode the deterministic engine tests use.
"""

from __future__ import annotations

import contextlib
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.campaign.runners import get_runner
from repro.campaign.spec import CampaignSpec, TrialSpec
from repro.campaign.store import ResultStore

#: Identity of a trial's *work* (as opposed to its spec position):
#: ``(runner name, canonical params JSON, derived seed)``.  Two trials
#: sharing a key are guaranteed to produce identical metrics, so one
#: execution can serve both.
TrialKey = Tuple[str, str, int]


class TrialTimeout(Exception):
    """A trial exceeded its wall-clock budget and was interrupted."""


@contextlib.contextmanager
def _deadline(seconds: Optional[float]):
    """Interrupt the enclosed block after ``seconds`` of wall time.

    Uses a real-time interval timer; silently degrades to no enforcement
    where SIGALRM is unavailable (non-POSIX) or off the main thread.
    """
    if not seconds or not hasattr(signal, "SIGALRM"):
        yield
        return

    def on_alarm(signum: int, frame: Any) -> None:
        raise TrialTimeout(f"trial exceeded {seconds}s wall-clock budget")

    try:
        previous = signal.signal(signal.SIGALRM, on_alarm)
    except ValueError:  # not the main thread: cannot install handlers
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _execute_trial(
    runner_name: str,
    params: Dict[str, Any],
    seed: int,
    timeout: Optional[float],
) -> Dict[str, Any]:
    """Run one trial (in a pool worker or inline) and time it.

    Module-level so only ``(name, params, seed, timeout)`` — all plain
    data — crosses the process boundary.
    """
    runner = get_runner(runner_name)
    start = time.perf_counter()
    with _deadline(timeout):
        metrics = runner(params, seed)
    return {"metrics": metrics, "wall_time_s": time.perf_counter() - start}


@dataclass
class CampaignRunStats:
    """What one :meth:`CampaignExecutor.run` call did."""

    total_trials: int = 0
    skipped: int = 0
    succeeded: int = 0
    failed: int = 0
    executed_attempts: int = 0
    cache_hits: int = 0
    pool_rebuilds: int = 0
    wall_time_s: float = 0.0
    errors: List[str] = field(default_factory=list)

    @property
    def remaining(self) -> int:
        """Trials still without a successful record after this run."""
        return self.total_trials - self.skipped - self.succeeded


ProgressFn = Callable[[str], None]


class CampaignExecutor:
    """Drive a campaign spec's pending trials to completion."""

    # Safety valve: a deterministically crashing trial must not rebuild
    # the pool forever.  Each rebuild charges the in-flight wave, so the
    # crasher's budget empties within (max_retries + 1) rebuilds; the
    # extra headroom absorbs unrelated transient crashes.
    MAX_POOL_REBUILDS_PER_RETRY = 3

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        workers: int = 1,
        progress: Optional[ProgressFn] = None,
        cache: Optional[Dict[TrialKey, Dict[str, Any]]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.store = store
        self.workers = workers
        self.progress = progress
        # Trial memoization: metrics keyed by (runner, canonical params,
        # seed).  Identical trial specs within a run — seed-repeated
        # duplicate points, or the evolutionary driver re-visiting a
        # genome under common random numbers — execute once and are
        # served from here for zero additional trial cost.  Passing a
        # dict in shares the memo across executors (the evolve driver
        # threads one through every generation).
        self.cache: Dict[TrialKey, Dict[str, Any]] = (
            cache if cache is not None else {}
        )

    def trial_key(self, trial: TrialSpec) -> TrialKey:
        """The memoization key of one trial's work."""
        return (self.spec.runner, trial.point_key(), trial.seed)

    # ------------------------------------------------------------------
    def run(
        self,
        limit: Optional[int] = None,
        select: Optional[Set[str]] = None,
    ) -> CampaignRunStats:
        """Execute pending trials; returns run statistics.

        ``limit`` caps how many pending trials this call attempts (used
        to exercise interruption/resume paths deterministically); the
        rest stay pending for a later run.  ``select`` restricts the run
        to the named trial IDs — sequential drivers (the fault-space
        campaign) use it to release trials in rounds while keeping the
        full-budget spec, and with it the trial identities, fixed.
        """
        started = time.perf_counter()
        trials = self.spec.trials()
        completed = self.store.completed_ids()
        pending = [t for t in trials if t.trial_id not in completed]
        if select is not None:
            pending = [t for t in pending if t.trial_id in select]
        if limit is not None:
            pending = pending[:limit]
        stats = CampaignRunStats(
            total_trials=len(trials), skipped=len(trials) - len(pending)
        )
        self._emit(
            f"campaign {self.spec.name!r}: {len(trials)} trials, "
            f"{stats.skipped} already complete, {len(pending)} to run "
            f"on {self.workers} worker(s)"
        )
        if pending:
            if self.workers == 1:
                self._run_inline(pending, stats)
            else:
                self._run_pool(pending, stats)
        stats.wall_time_s = time.perf_counter() - started
        cache_note = (
            f" ({stats.cache_hits} from cache)" if stats.cache_hits else ""
        )
        self._emit(
            f"campaign {self.spec.name!r}: {stats.succeeded} ok{cache_note}, "
            f"{stats.failed} failed, {stats.skipped} skipped "
            f"in {stats.wall_time_s:.2f}s"
        )
        return stats

    # ------------------------------------------------------------------
    def _run_inline(self, pending: List[TrialSpec], stats: CampaignRunStats) -> None:
        """Serial in-process execution (workers == 1)."""
        queue: Deque[TrialSpec] = deque(pending)
        attempts: Dict[str, int] = {}
        while queue:
            trial = queue.popleft()
            key = self.trial_key(trial)
            if key in self.cache:
                self._record_cached(trial, key, stats)
                continue
            attempt = attempts.get(trial.trial_id, 0) + 1
            attempts[trial.trial_id] = attempt
            try:
                outcome = _execute_trial(
                    self.spec.runner, trial.params, trial.seed, self.spec.trial_timeout
                )
            except TrialTimeout as exc:
                self._record_failure(trial, attempt, "timeout", exc, stats, queue)
            except Exception as exc:  # noqa: BLE001 — any trial error is data
                self._record_failure(trial, attempt, "failed", exc, stats, queue)
            else:
                self._record_success(trial, attempt, outcome, stats)

    def _run_pool(self, pending: List[TrialSpec], stats: CampaignRunStats) -> None:
        """Parallel execution over a (rebuildable) process pool."""
        queue: Deque[TrialSpec] = deque(pending)
        attempts: Dict[str, int] = {}
        max_rebuilds = self.MAX_POOL_REBUILDS_PER_RETRY * (self.spec.max_retries + 1)
        pool = ProcessPoolExecutor(max_workers=self.workers)
        in_flight: Dict[Any, TrialSpec] = {}
        # Duplicate-work dedup across the wave: trials whose key is
        # already executing park here and are served from the cache when
        # the representative lands (or re-queued, uncharged, if it fails).
        waiters: Dict[TrialKey, List[TrialSpec]] = {}

        def flush_waiters(key: TrialKey) -> None:
            for waiter in waiters.pop(key, []):
                queue.appendleft(waiter)

        try:
            while queue or in_flight:
                # Keep exactly one wave in flight: bounds both memory and
                # the blast radius of an unattributable worker crash.
                while queue and len(in_flight) < self.workers:
                    trial = queue.popleft()
                    key = self.trial_key(trial)
                    if key in self.cache:
                        self._record_cached(trial, key, stats)
                        continue
                    if key in waiters:
                        waiters[key].append(trial)
                        continue
                    attempts[trial.trial_id] = attempts.get(trial.trial_id, 0) + 1
                    future = pool.submit(
                        _execute_trial,
                        self.spec.runner,
                        trial.params,
                        trial.seed,
                        self.spec.trial_timeout,
                    )
                    in_flight[future] = trial
                    waiters[key] = []
                if not in_flight:
                    continue
                done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    trial = in_flight.pop(future)
                    attempt = attempts[trial.trial_id]
                    try:
                        outcome = future.result()
                    except TrialTimeout as exc:
                        self._record_failure(trial, attempt, "timeout", exc, stats, queue)
                        flush_waiters(self.trial_key(trial))
                    except BrokenProcessPool:
                        broken = True
                        in_flight[future] = trial  # handled with the wave below
                    except Exception as exc:  # noqa: BLE001
                        self._record_failure(trial, attempt, "failed", exc, stats, queue)
                        flush_waiters(self.trial_key(trial))
                    else:
                        self._record_success(trial, attempt, outcome, stats)
                        flush_waiters(self.trial_key(trial))
                if broken:
                    stats.pool_rebuilds += 1
                    casualties = list(in_flight.values())
                    in_flight.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    self._emit(
                        f"worker crash broke the pool (rebuild "
                        f"{stats.pool_rebuilds}/{max_rebuilds}); "
                        f"{len(casualties)} in-flight trial(s) charged one attempt"
                    )
                    out_of_budget = stats.pool_rebuilds > max_rebuilds
                    for trial in casualties:
                        # Waiters never ran: re-queue them uncharged (the
                        # abandon path below then accounts for them too).
                        flush_waiters(self.trial_key(trial))
                        exc = BrokenProcessPool("worker process died")
                        self._record_failure(
                            trial,
                            attempts[trial.trial_id],
                            "crashed",
                            exc,
                            stats,
                            queue if not out_of_budget else None,
                        )
                    if out_of_budget:
                        for trial in queue:
                            stats.failed += 1
                            stats.errors.append(
                                f"{trial.trial_id}: abandoned after repeated pool crashes"
                            )
                        queue.clear()
                        break
                    pool = ProcessPoolExecutor(max_workers=self.workers)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def _record_success(
        self,
        trial: TrialSpec,
        attempt: int,
        outcome: Dict[str, Any],
        stats: CampaignRunStats,
    ) -> None:
        stats.executed_attempts += 1
        stats.succeeded += 1
        self.cache[self.trial_key(trial)] = outcome["metrics"]
        self.store.append(
            {
                "trial_id": trial.trial_id,
                "index": trial.index,
                "status": "ok",
                "attempt": attempt,
                "seed": trial.seed,
                "seed_index": trial.seed_index,
                "params": trial.params,
                "metrics": outcome["metrics"],
                "wall_time_s": round(outcome["wall_time_s"], 6),
            }
        )
        done = stats.skipped + stats.succeeded + stats.failed
        self._emit(
            f"[{done}/{stats.total_trials}] {trial.trial_id} ok "
            f"({outcome['wall_time_s']:.2f}s)"
        )

    def _record_cached(
        self, trial: TrialSpec, key: TrialKey, stats: CampaignRunStats
    ) -> None:
        """Serve one trial from the memo: a full ok record, zero execution.

        The record is indistinguishable from an executed one as far as
        aggregation is concerned (params/metrics/seed_index), carries
        ``cached: true`` and ``attempt: 0`` for audit, and reports zero
        wall time — which the byte-stable summary excludes anyway.
        """
        stats.succeeded += 1
        stats.cache_hits += 1
        self.store.append(
            {
                "trial_id": trial.trial_id,
                "index": trial.index,
                "status": "ok",
                "attempt": 0,
                "cached": True,
                "seed": trial.seed,
                "seed_index": trial.seed_index,
                "params": trial.params,
                "metrics": self.cache[key],
                "wall_time_s": 0.0,
            }
        )
        done = stats.skipped + stats.succeeded + stats.failed
        self._emit(
            f"[{done}/{stats.total_trials}] {trial.trial_id} ok (cache)"
        )

    def _record_failure(
        self,
        trial: TrialSpec,
        attempt: int,
        status: str,
        exc: BaseException,
        stats: CampaignRunStats,
        retry_queue: Optional[Deque[TrialSpec]],
    ) -> None:
        stats.executed_attempts += 1
        error = f"{type(exc).__name__}: {exc}"
        self.store.append(
            {
                "trial_id": trial.trial_id,
                "index": trial.index,
                "status": status,
                "attempt": attempt,
                "seed": trial.seed,
                "seed_index": trial.seed_index,
                "params": trial.params,
                "error": error,
            }
        )
        will_retry = (
            retry_queue is not None and attempt <= self.spec.max_retries
        )
        if will_retry:
            retry_queue.append(trial)
            self._emit(
                f"{trial.trial_id} {status} on attempt {attempt} "
                f"({error}); retrying"
            )
        else:
            stats.failed += 1
            stats.errors.append(f"{trial.trial_id}: {error}")
            done = stats.skipped + stats.succeeded + stats.failed
            self._emit(
                f"[{done}/{stats.total_trials}] {trial.trial_id} {status} "
                f"after {attempt} attempt(s): {error}"
            )

    def _emit(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)
