"""Experiment-campaign engine: declarative sweeps, parallel execution,
resumable result store, seed-aggregated reporting.

The paper's evaluation workload (and that of the related work it cites —
seed sweeps over protocol, fault rate, and rejuvenation knobs) is a
*campaign*: a grid of independent trials, each a deterministic simulation
keyed by a derived seed.  This package turns the repo's one-shot benches
into a sweep-scale platform:

* :mod:`repro.campaign.spec` — declarative sweep definitions (grid/zip)
  with stable per-trial IDs derived from the spec hash,
* :mod:`repro.campaign.runners` — the registry of picklable trial
  functions (throughput, rejuvenation-vs-APT, selftest),
* :mod:`repro.campaign.executor` — a process-pool runner with per-trial
  timeouts, bounded retries, and worker-crash recovery,
* :mod:`repro.campaign.store` — an append-only JSONL result store that
  makes interrupted campaigns resumable,
* :mod:`repro.campaign.report` — mean/stddev/95% CI aggregation across
  seeds, rendered through :class:`repro.metrics.Table` plus a
  machine-readable ``summary.json``,
* :mod:`repro.campaign.builtin` — ready-made campaign definitions for
  ``python -m repro campaign run``.

Quickstart::

    from repro.campaign import CampaignSpec, CampaignExecutor, ResultStore

    spec = CampaignSpec(
        name="sweep", runner="throughput",
        axes={"protocol": ["minbft", "pbft"]}, n_seeds=5,
    )
    store = ResultStore("campaigns", spec)
    store.open()
    CampaignExecutor(spec, store, workers=4).run()
"""

from repro.campaign.builtin import BUILTIN_CAMPAIGNS, build_campaign
from repro.campaign.executor import CampaignExecutor, CampaignRunStats, TrialTimeout
from repro.campaign.report import aggregate, render_report, write_summary
from repro.campaign.runners import get_runner, register_runner
from repro.campaign.spec import CampaignSpec, TrialSpec
from repro.campaign.store import ResultStore, SpecMismatchError

__all__ = [
    "BUILTIN_CAMPAIGNS",
    "CampaignExecutor",
    "CampaignRunStats",
    "CampaignSpec",
    "ResultStore",
    "SpecMismatchError",
    "TrialSpec",
    "TrialTimeout",
    "aggregate",
    "build_campaign",
    "get_runner",
    "register_runner",
    "render_report",
    "write_summary",
]
