"""Declarative sweep definitions with stable, spec-derived trial IDs.

A :class:`CampaignSpec` names a registered runner and describes the
parameter sweep to drive it with:

* ``axes`` — the swept parameters.  In ``grid`` mode the trials are the
  cartesian product of all axis values; in ``zip`` mode the axes are
  zipped positionally (all must have equal length), which expresses
  hand-picked configuration tuples such as named rejuvenation policies.
* ``base`` — fixed parameters merged under every trial (axis values win).
* ``n_seeds`` — how many seed repetitions each parameter point gets.

Every trial gets a **stable ID** derived from the spec hash, its
canonical parameter dict, and its seed index.  IDs are therefore
invariant under process restarts and sweep reordering — which is what
makes the result store resumable — and any change to the spec (an extra
axis value, a different horizon) changes the hash and forces a fresh
campaign directory instead of silently mixing incompatible results.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.sim.rng import derive_trial_seed


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding used for hashing and summary files."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TrialSpec:
    """One unit of work: a runner invocation with fixed params and seed."""

    trial_id: str
    index: int
    seed_index: int
    seed: int
    params: Dict[str, Any]

    def point_key(self) -> str:
        """Canonical key of the parameter point (seed-independent).

        Trials sharing a ``point_key`` are seed repetitions of the same
        configuration; the report aggregates over them.
        """
        return canonical_json(self.params)


@dataclass
class CampaignSpec:
    """A declarative experiment sweep.

    ``runner`` names a function in :mod:`repro.campaign.runners`;
    ``trial_timeout`` is wall-clock seconds per trial (None disables);
    ``max_retries`` bounds re-execution after crashes or timeouts.
    """

    name: str
    runner: str
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    base: Dict[str, Any] = field(default_factory=dict)
    mode: str = "grid"
    n_seeds: int = 3
    campaign_seed: int = 0
    trial_timeout: Optional[float] = 300.0
    max_retries: int = 1
    description: str = ""
    #: Common-random-numbers mode.  When set, seed repetition *k* of
    #: every parameter point derives its simulator seed from
    #: ``(campaign_seed, "<namespace>:<k>")`` instead of the trial ID, so
    #: all points share one seed per repetition.  Paired comparisons
    #: (which configuration is better *under the same sample path?*)
    #: then see variance-reduced differences, and two specs carrying the
    #: same namespace and campaign seed evaluate any repeated parameter
    #: point with identical ``(runner, params, seed)`` — the key the
    #: executor's trial cache memoizes on.  The evolutionary driver
    #: (:mod:`repro.evolve`) sets this on every generation's spec.
    seed_namespace: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or self.name.startswith("."):
            raise ValueError(f"invalid campaign name {self.name!r}")
        if self.mode not in ("grid", "zip"):
            raise ValueError(f"mode must be 'grid' or 'zip', got {self.mode!r}")
        if self.n_seeds < 1:
            raise ValueError("n_seeds must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise ValueError("trial_timeout must be positive or None")
        for axis, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or len(values) == 0:
                raise ValueError(f"axis {axis!r} must be a non-empty list")
        if self.mode == "zip" and self.axes:
            lengths = {len(v) for v in self.axes.values()}
            if len(lengths) > 1:
                raise ValueError(
                    f"zip-mode axes must have equal lengths, got {sorted(lengths)}"
                )
        try:
            canonical_json({"axes": self.axes, "base": self.base})
        except TypeError as exc:
            raise ValueError(f"axis/base values must be JSON-serializable: {exc}")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The JSON-serializable form persisted as ``spec.json``."""
        return {
            "name": self.name,
            "runner": self.runner,
            "axes": self.axes,
            "base": self.base,
            "mode": self.mode,
            "n_seeds": self.n_seeds,
            "campaign_seed": self.campaign_seed,
            "trial_timeout": self.trial_timeout,
            "max_retries": self.max_retries,
            "description": self.description,
            "seed_namespace": self.seed_namespace,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)

    def spec_hash(self) -> str:
        """Stable digest of everything that affects trial identity.

        ``trial_timeout`` and ``max_retries`` are execution policy, not
        experiment content, so they are excluded: raising a timeout must
        not invalidate completed results.
        """
        content = {
            "name": self.name,
            "runner": self.runner,
            "axes": self.axes,
            "base": self.base,
            "mode": self.mode,
            "n_seeds": self.n_seeds,
            "campaign_seed": self.campaign_seed,
        }
        if self.seed_namespace is not None:
            # Only hashed when set, so pre-existing campaign directories
            # (written before the field existed) keep their identities.
            content["seed_namespace"] = self.seed_namespace
        return hashlib.sha256(canonical_json(content).encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    def points(self) -> Iterator[Dict[str, Any]]:
        """The swept parameter points (base merged, seeds not applied)."""
        if not self.axes:
            yield dict(self.base)
            return
        names = sorted(self.axes)
        if self.mode == "grid":
            combos: Iterator[Sequence[Any]] = itertools.product(
                *(self.axes[n] for n in names)
            )
        else:
            combos = zip(*(self.axes[n] for n in names))
        for values in combos:
            point = dict(self.base)
            point.update(zip(names, values))
            yield point

    def trials(self) -> List[TrialSpec]:
        """Expand the sweep into the full, ordered trial list."""
        spec_hash = self.spec_hash()
        trials: List[TrialSpec] = []
        index = 0
        for point in self.points():
            for seed_index in range(self.n_seeds):
                identity = f"{spec_hash}:{canonical_json(point)}:{seed_index}"
                digest = hashlib.sha256(identity.encode("utf-8")).hexdigest()[:10]
                trial_id = f"t{index:04d}-{digest}"
                if self.seed_namespace is None:
                    seed = derive_trial_seed(self.campaign_seed, trial_id)
                else:
                    seed = derive_trial_seed(
                        self.campaign_seed,
                        f"{self.seed_namespace}:{seed_index}",
                    )
                trials.append(
                    TrialSpec(
                        trial_id=trial_id,
                        index=index,
                        seed_index=seed_index,
                        seed=seed,
                        params=point,
                    )
                )
                index += 1
        return trials

    @property
    def n_trials(self) -> int:
        """Total trial count of the sweep."""
        n_points = sum(1 for _ in self.points())
        return n_points * self.n_seeds
