"""The trial-runner registry: named, picklable units of campaign work.

A runner is a module-level function ``fn(params, seed) -> metrics`` where
``params`` is the trial's merged parameter dict, ``seed`` is its derived
simulator master seed, and ``metrics`` is a flat dict of JSON-serializable
numbers.  Runners are addressed **by name** so that only a string crosses
the process boundary to pool workers — fresh (spawned) workers rebuild
the registry simply by importing this module.

Built-ins:

* ``throughput`` — protocol/f sweep over :class:`repro.core.ResilientSystem`:
  completed ops, sim-time throughput, latency, safety.
* ``consensus_batching`` — the P2 hot-path sweep: request batching and
  pipelining on the primary against open-loop client windows.
* ``mesoscale`` — the C4 aggregated-population sweep: arrival-process
  populations (10^5–10^6 modeled clients) with admission control and
  load shedding over a sharded system.
* ``leased_reads`` — the P4 read-path trial: a read-heavy aggregated
  population over a sharded system with primary-granted read leases on
  or off, reporting local-read share and lease churn counters.
* ``rejuv_apt`` — the rejuvenation-vs-APT survival race of E4, exposing
  period/diversify/relocate and attacker effort as sweep axes.
* ``pdes`` — the P3 conservative-PDES trial: a domain fleet advanced
  through lookahead barriers, optionally verifying that parallel
  execution reproduces the serial summary byte for byte.
* ``evolve`` — the P5 design-point evaluation: one genome of the
  evolutionary search (protocol/f/batching/window/shards/mesh/
  rejuvenation/lease) scored on the four Pareto objectives.
* ``evolve_selftest`` — an analytic stand-in for ``evolve`` with the
  same genome params, metric keys, and trade-off structure; used by the
  search's own tests and the CI evolve smoke.
* ``selftest`` — a microscopic deterministic workload with optional
  failure/sleep/crash knobs, used by the engine's own tests and CI smoke.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

Runner = Callable[[Dict[str, Any], int], Dict[str, Any]]

RUNNERS: Dict[str, Runner] = {}


def register_runner(name: str) -> Callable[[Runner], Runner]:
    """Decorator: add a trial function to the registry under ``name``."""

    def decorate(fn: Runner) -> Runner:
        if name in RUNNERS:
            raise ValueError(f"runner {name!r} already registered")
        RUNNERS[name] = fn
        return fn

    return decorate


def get_runner(name: str) -> Runner:
    """Look up a registered runner, with a helpful error."""
    try:
        return RUNNERS[name]
    except KeyError:
        raise KeyError(
            f"unknown runner {name!r}; available: {', '.join(sorted(RUNNERS))}"
        )


# ----------------------------------------------------------------------
# Built-in runners
# ----------------------------------------------------------------------

@register_runner("throughput")
def run_throughput(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One service-throughput trial on a fully assembled resilient system.

    Params: ``protocol``, ``f``, ``duration`` (sim ms), ``n_clients``,
    ``think_time``, ``warmup``, ``width``, ``height``.
    """
    from repro.bft.client import ClientConfig
    from repro.core import OrchestratorConfig, ResilientSystem

    duration = float(params.get("duration", 300_000.0))
    warmup = float(params.get("warmup", 50_000.0))
    system = ResilientSystem(
        OrchestratorConfig(
            seed=seed,
            protocol=params.get("protocol", "minbft"),
            f=int(params.get("f", 1)),
            width=int(params.get("width", 6)),
            height=int(params.get("height", 6)),
        )
    )
    clients = [
        system.add_client(
            f"c{i}", ClientConfig(think_time=float(params.get("think_time", 100.0)))
        )
        for i in range(int(params.get("n_clients", 1)))
    ]
    system.start(warmup=warmup)
    start = system.sim.now
    system.run(duration)
    ops = sum(c.completions_in(start, system.sim.now) for c in clients)
    latencies = sorted(
        lat for c in clients for lat in c.latencies_in(start, system.sim.now)
    )
    mean_lat = sum(latencies) / len(latencies) if latencies else 0.0
    p95 = latencies[int(0.95 * (len(latencies) - 1))] if latencies else 0.0
    return {
        "ops": ops,
        "ops_per_sec": ops / (duration / 1000.0),
        "mean_latency_ms": mean_lat,
        "p95_latency_ms": p95,
        "replicas": len(system.group.members),
        "safe": 1 if system.is_safe else 0,
    }


@register_runner("consensus_batching")
def run_consensus_batching(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One batching/pipelining throughput trial (the P2 sweep).

    Sweeps the consensus hot-path knobs: the primary's ``batch_size`` /
    ``max_inflight`` (see :mod:`repro.bft.batching`) against the clients'
    ``max_outstanding`` open-loop window.  ``batch_size=1`` with
    ``max_outstanding=1`` is the classic closed-loop baseline.

    Params: ``protocol``, ``f``, ``batch_size``, ``batch_delay``,
    ``max_inflight``, ``max_outstanding``, ``duration`` (sim ms),
    ``n_clients``, ``think_time``, ``warmup``, ``width``, ``height``.
    """
    from repro.bft.batching import BatchConfig
    from repro.bft.client import ClientConfig
    from repro.bft.group import protocol_config_for
    from repro.core import OrchestratorConfig, ResilientSystem

    duration = float(params.get("duration", 240_000.0))
    warmup = float(params.get("warmup", 40_000.0))
    protocol = params.get("protocol", "minbft")
    batch_size = int(params.get("batch_size", 1))
    max_inflight = int(params.get("max_inflight", 0))
    batch_delay = float(params.get("batch_delay", 0.0))
    batching = None
    if batch_size > 1 or max_inflight > 0 or batch_delay > 0:
        batching = BatchConfig(
            batch_size=batch_size, batch_delay=batch_delay, max_inflight=max_inflight
        )
    system = ResilientSystem(
        OrchestratorConfig(
            seed=seed,
            protocol=protocol,
            f=int(params.get("f", 1)),
            width=int(params.get("width", 6)),
            height=int(params.get("height", 6)),
            enable_rejuvenation=False,
            protocol_config=protocol_config_for(protocol, batching=batching),
        )
    )
    clients = [
        system.add_client(
            f"c{i}",
            ClientConfig(
                think_time=float(params.get("think_time", 100.0)),
                max_outstanding=int(params.get("max_outstanding", 1)),
            ),
        )
        for i in range(int(params.get("n_clients", 4)))
    ]
    system.start(warmup=warmup)
    start = system.sim.now
    system.run(duration)
    ops = sum(c.completions_in(start, system.sim.now) for c in clients)
    latencies = sorted(
        lat for c in clients for lat in c.latencies_in(start, system.sim.now)
    )
    batch_hist = system.chip.metrics.histogram("sys.batch.size")
    inflight_gauge = system.chip.metrics.gauge("sys.inflight")
    return {
        "ops": ops,
        "ops_per_sec": ops / (duration / 1000.0),
        "mean_latency_ms": sum(latencies) / len(latencies) if latencies else 0.0,
        "p95_latency_ms": latencies[int(0.95 * (len(latencies) - 1))] if latencies else 0.0,
        "committed_ops": system.chip.metrics.counter("sys.committed_ops").value,
        "mean_batch_size": batch_hist.mean(),
        "peak_inflight": inflight_gauge.peak,
        "safe": 1 if system.is_safe else 0,
    }


@register_runner("shard_scaling")
def run_shard_scaling(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One shard-count throughput trial on a sharded system.

    Fixed aggregate client load (``n_clients`` closed-loop drivers) over
    a varying ``n_shards`` — the C2 scaling story.  Rejuvenation defaults
    off so the measurement isolates the consensus-pipeline bottleneck.

    Params: ``n_shards``, ``duration`` (sim ms), ``n_clients``,
    ``think_time``, ``warmup``, ``width``, ``height``, ``protocol``,
    ``f``, ``key_space``, ``rejuvenation``.
    """
    from repro.mesoscale import PopulationConfig
    from repro.shard import ShardConfig, ShardedSystem
    from repro.workloads import FactoryWorkload

    duration = float(params.get("duration", 240_000.0))
    warmup = float(params.get("warmup", 60_000.0))
    key_space = int(params.get("key_space", 256))

    def op_factory(i: int) -> Any:
        key = f"k{i % key_space}"
        return ("put", key, i) if i % 2 == 0 else ("get", key)

    system = ShardedSystem(
        ShardConfig(
            seed=seed,
            n_shards=int(params.get("n_shards", 2)),
            protocol=params.get("protocol", "minbft"),
            f=int(params.get("f", 1)),
            width=int(params.get("width", 8)),
            height=int(params.get("height", 8)),
            enable_rejuvenation=bool(params.get("rejuvenation", False)),
        )
    )
    drivers = [
        system.attach_population(
            f"c{i}",
            PopulationConfig(
                n_clients=1,
                mode="closed",
                think_time=float(params.get("think_time", 50.0)),
                workload=FactoryWorkload(op_factory, name="kv-scaling"),
            ),
        )
        for i in range(int(params.get("n_clients", 8)))
    ]
    system.start(warmup=warmup)
    start = system.sim.now
    system.run(duration)
    ops = sum(d.completions_in(start, system.sim.now) for d in drivers)
    latencies = sorted(
        lat for d in drivers for lat in d.latencies_in(start, system.sim.now)
    )
    per_shard = [
        system.chip.metrics.counter(f"shard.{sid}.ops").value
        for sid in system.directory.shard_ids
    ]
    return {
        "ops": ops,
        "ops_per_sec": ops / (duration / 1000.0),
        "mean_latency_ms": sum(latencies) / len(latencies) if latencies else 0.0,
        "p95_latency_ms": latencies[int(0.95 * (len(latencies) - 1))] if latencies else 0.0,
        "failed_ops": system.failed_operations(),
        "shard_ops_min": min(per_shard),
        "shard_ops_max": max(per_shard),
        "degraded_shards": len(system.directory.degraded_shards()),
        "safe": 1 if system.is_safe else 0,
    }


@register_runner("mesoscale")
def run_mesoscale(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One aggregated-population traffic trial (the C4 mesoscale story).

    Drives ``n_populations`` aggregated populations — together modeling
    ``n_clients`` clients with O(populations) memory — through a sharded
    system, optionally killing a shard mid-run to exercise admission
    control's degraded-shard shedding.

    Params: ``process`` (poisson|pareto|diurnal|flash),
    ``rate_per_client`` (ops per client per sim ms), ``n_clients``
    (modeled, split across populations), ``n_populations``, ``n_shards``,
    ``tick``, ``max_inflight``, ``queue_limit``, ``duration``,
    ``warmup``, ``kill_shard`` (shard id or empty), ``key_space``,
    ``width``, ``height``, ``protocol``, ``f``.
    """
    from repro.metrics.traffic import (
        aggregate_completions,
        aggregate_latencies,
        latency_percentiles,
    )
    from repro.mesoscale import PopulationConfig
    from repro.shard import ShardConfig, ShardedSystem
    from repro.workloads import (
        DiurnalArrivals,
        FlashCrowdArrivals,
        ParetoArrivals,
        PoissonArrivals,
        kv_workload,
    )

    duration = float(params.get("duration", 240_000.0))
    warmup = float(params.get("warmup", 60_000.0))
    rate = float(params.get("rate_per_client", 2e-6))
    process = str(params.get("process", "poisson"))
    if process == "poisson":
        arrivals: Any = PoissonArrivals(rate)
    elif process == "pareto":
        arrivals = ParetoArrivals(rate, alpha=float(params.get("alpha", 1.7)))
    elif process == "diurnal":
        arrivals = DiurnalArrivals(
            rate,
            amplitude=float(params.get("amplitude", 0.5)),
            period=float(params.get("period", duration)),
        )
    elif process == "flash":
        spike_duration = float(params.get("spike_duration", duration / 4.0))
        arrivals = FlashCrowdArrivals(
            rate,
            spike_start=warmup + float(params.get("spike_after", duration / 4.0)),
            spike_duration=spike_duration,
            multiplier=float(params.get("multiplier", 10.0)),
            ramp=float(params.get("ramp", spike_duration / 8.0)),
        )
    else:
        raise ValueError(f"unknown arrival process {process!r}")

    system = ShardedSystem(
        ShardConfig(
            seed=seed,
            n_shards=int(params.get("n_shards", 4)),
            protocol=params.get("protocol", "minbft"),
            f=int(params.get("f", 1)),
            width=int(params.get("width", 8)),
            height=int(params.get("height", 8)),
            enable_rejuvenation=False,
        )
    )
    n_clients = int(params.get("n_clients", 100_000))
    n_populations = max(1, int(params.get("n_populations", 2)))
    per_pop = max(1, n_clients // n_populations)
    populations = [
        system.attach_population(
            f"pop{i}",
            PopulationConfig(
                n_clients=per_pop,
                workload=kv_workload(
                    keys=int(params.get("key_space", 256)), arrivals=arrivals
                ),
                tick=float(params.get("tick", 100.0)),
                max_inflight=int(params.get("max_inflight", 64)),
                queue_limit=int(params.get("queue_limit", 4096)),
            ),
        )
        for i in range(n_populations)
    ]
    system.start(warmup=warmup)
    start = system.sim.now
    kill_shard = str(params.get("kill_shard", "") or "")
    if kill_shard:
        system.sim.schedule(duration / 2.0, system.kill_shard, kill_shard)
    system.run(duration)
    end = system.sim.now
    ops = aggregate_completions(populations, start, end)
    pct = latency_percentiles(
        aggregate_latencies(populations, start, end), (50.0, 99.0)
    )
    offered = sum(p.offered for p in populations)
    admitted = sum(p.admitted for p in populations)
    shed = sum(p.shed for p in populations)
    shed_degraded = sum(
        p.shed_by_reason.get("degraded", 0) for p in populations
    )
    return {
        "ops": ops,
        "ops_per_sec": ops / (duration / 1000.0),
        "p50_latency_ms": pct["p50"],
        "p99_latency_ms": pct["p99"],
        "offered": offered,
        "admitted": admitted,
        "shed": shed,
        "shed_degraded": shed_degraded,
        "shed_fraction": shed / offered if offered else 0.0,
        "backlog": sum(p.backlog for p in populations),
        "failed_ops": system.failed_operations(),
        "modeled_clients": sum(p.modeled_clients for p in populations),
        "degraded_shards": len(system.directory.degraded_shards()),
        "safe": 1 if system.is_safe else 0,
    }


@register_runner("leased_reads")
def run_leased_reads(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One read-path trial: quorum fast path vs leased local reads (P4).

    An aggregated open-loop population drives a read-heavy KV mix
    through a sharded system; ``leases`` switches the primary-granted
    read-lease machinery on, in which case reads resolve on one NoC hop
    at the leaseholder and bypass the population's ordered-inflight cap.
    Lease counters land in the report so campaigns can track grant/
    revocation churn alongside throughput.

    Params: ``leases`` (bool), ``read_ratio``, ``lease_duration``,
    ``renew_period``, ``n_ranges``, ``protocol``, ``f``, ``n_shards``,
    ``n_clients`` (modeled), ``rate_per_client``, ``max_inflight``,
    ``queue_limit``, ``key_space``, ``batch_size``, ``batch_delay``,
    ``batch_inflight``, ``duration``, ``warmup``, ``width``, ``height``.
    """
    from repro.bft.batching import BatchConfig
    from repro.bft.group import protocol_config_for
    from repro.bft.leases import LeaseConfig
    from repro.mesoscale import PopulationConfig
    from repro.shard import ShardConfig, ShardedSystem
    from repro.workloads import kv_workload

    duration = float(params.get("duration", 240_000.0))
    warmup = float(params.get("warmup", 60_000.0))
    protocol = params.get("protocol", "minbft")
    batching = None
    batch_size = int(params.get("batch_size", 8))
    if batch_size > 1:
        batching = BatchConfig(
            batch_size=batch_size,
            batch_delay=float(params.get("batch_delay", 100.0)),
            max_inflight=int(params.get("batch_inflight", 4)),
        )
    leases = None
    if params.get("leases"):
        leases = LeaseConfig(
            n_ranges=int(params.get("n_ranges", 64)),
            duration=float(params.get("lease_duration", 30_000.0)),
            renew_period=float(params.get("renew_period", 1_000.0)),
        )
    system = ShardedSystem(
        ShardConfig(
            seed=seed,
            n_shards=int(params.get("n_shards", 2)),
            protocol=protocol,
            f=int(params.get("f", 1)),
            width=int(params.get("width", 8)),
            height=int(params.get("height", 8)),
            enable_rejuvenation=False,
            protocol_config=protocol_config_for(
                protocol, batching=batching, leases=leases
            ),
        )
    )
    population = system.attach_population(
        "pop",
        PopulationConfig(
            n_clients=int(params.get("n_clients", 1000)),
            max_inflight=int(params.get("max_inflight", 32)),
            queue_limit=int(params.get("queue_limit", 2048)),
            workload=kv_workload(
                keys=int(params.get("key_space", 64)),
                read_ratio=float(params.get("read_ratio", 0.9)),
                rate_per_client=float(params.get("rate_per_client", 2e-4)),
            ),
        ),
    )
    system.start(warmup=warmup)
    start = system.sim.now
    system.run(duration)
    end = system.sim.now
    ops = population.completions_in(start, end)
    latencies = sorted(population.latencies_in(start, end))
    metrics = system.chip.metrics
    shard_sum = lambda suffix: sum(  # noqa: E731
        metrics.counter(f"{sid}.{suffix}").value for sid in system.shards
    )
    n_replicas = sum(len(s.group.members) for s in system.shards.values())
    ordered_ops = shard_sum("committed_ops") / (n_replicas / len(system.shards))
    return {
        "ops": ops,
        "ops_per_sec": ops / (duration / 1000.0),
        "mean_latency_ms": sum(latencies) / len(latencies) if latencies else 0.0,
        "p95_latency_ms": latencies[int(0.95 * (len(latencies) - 1))] if latencies else 0.0,
        "reads_local": shard_sum("reads.local"),
        "reads_quorum_fallback": shard_sum("reads.quorum_fallback"),
        "lease_granted": shard_sum("lease.granted"),
        "lease_renewed": shard_sum("lease.renewed"),
        "lease_revoked": shard_sum("lease.revoked"),
        "lease_expired": shard_sum("lease.expired"),
        "ordered_ops": ordered_ops,
        "ordered_frac": ordered_ops / ops if ops else 0.0,
        "shed": population.shed,
        "safe": 1 if system.is_safe else 0,
    }


@register_runner("rejuv_apt")
def run_rejuv_apt(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One rejuvenation-vs-APT survival race (the E4 workload as a sweep).

    Params: ``period`` (sim ms, None/0 disables rejuvenation),
    ``diversify``, ``relocate``, ``mean_effort``, ``reuse_factor``,
    ``horizon``, ``f``, ``sample_interval``.
    """
    from repro.core import OrchestratorConfig, ResilientSystem
    from repro.core.rejuvenation import RejuvenationPolicy
    from repro.faults import AptAttacker, AptConfig
    from repro.sim.timers import PeriodicTimer

    horizon = float(params.get("horizon", 600_000.0))
    period = params.get("period", 20_000.0)
    enabled = bool(period)
    system = ResilientSystem(
        OrchestratorConfig(
            seed=seed,
            protocol=params.get("protocol", "minbft"),
            f=int(params.get("f", 1)),
            enable_rejuvenation=enabled,
            rejuvenation=RejuvenationPolicy(
                period=float(period) if enabled else 20_000.0,
                diversify=bool(params.get("diversify", True)),
                relocate=bool(params.get("relocate", True)),
            ),
        )
    )
    attacker = AptAttacker(
        system.sim,
        targets=lambda: list(system.group.members),
        variant_of=system.diversity.variant_of,
        compromise=lambda name: system.group.replicas[name].compromise(),
        config=AptConfig(
            mean_effort=float(params.get("mean_effort", 120_000.0)),
            reuse_factor=float(params.get("reuse_factor", 0.25)),
            parallelism=int(params.get("parallelism", 1)),
        ),
    )
    if system.rejuvenation is not None:
        system.rejuvenation.on_rejuvenated = attacker.notify_rejuvenated
    system.start()
    attacker.start()

    sample_interval = float(params.get("sample_interval", 2_500.0))
    first_failure = [None]
    beyond_f = [0.0]

    def sample() -> None:
        if attacker.compromised_count > system.group.f:
            beyond_f[0] += sample_interval
            if first_failure[0] is None:
                first_failure[0] = system.sim.now

    PeriodicTimer(system.sim, sample_interval, sample)
    system.run(horizon)
    return {
        "survived": 1 if first_failure[0] is None else 0,
        "time_to_failure": first_failure[0] if first_failure[0] is not None else horizon,
        "time_beyond_f": beyond_f[0],
        "compromised_at_end": attacker.compromised_count,
        "variants_known": len(attacker.known_variants),
    }


@register_runner("pdes")
def run_pdes_trial(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One conservative-PDES trial (the P3 campaign).

    Builds a ``n_domains``-domain fleet and advances it through
    lookahead barriers.  ``workers`` picks the execution mode (1 =
    serial reference, N = worker processes); the summary is
    mode-independent by construction, so sweeping ``workers`` must not
    change any reported metric.  With ``verify`` set, the trial runs
    *both* modes and reports whether the canonical summaries were
    byte-identical — the PDES exactness contract as a campaign metric.

    Wall-clock numbers are deliberately not returned: campaign
    summaries are byte-stable artifacts (see :mod:`repro.campaign.report`);
    speed lives in the P3 bench.

    Params: ``n_domains``, ``shards_per_domain``, ``workers``,
    ``verify``, ``duration``, ``warmup``, ``window``,
    ``inter_domain_hops``, ``tick``, ``rate_per_tick``, ``key_space``,
    ``max_inflight``, ``protocol``, ``f``, ``width``, ``height``.
    """
    import dataclasses

    from repro.pdes import PdesConfig, run_pdes, summary_bytes

    window = params.get("window")
    config = PdesConfig(
        seed=seed,
        n_domains=int(params.get("n_domains", 4)),
        shards_per_domain=int(params.get("shards_per_domain", 1)),
        protocol=params.get("protocol", "minbft"),
        f=int(params.get("f", 1)),
        width=int(params.get("width", 6)),
        height=int(params.get("height", 6)),
        duration=float(params.get("duration", 120_000.0)),
        warmup=float(params.get("warmup", 60_000.0)),
        inter_domain_hops=int(params.get("inter_domain_hops", 100)),
        window=float(window) if window is not None else None,
        tick=float(params.get("tick", 100.0)),
        rate_per_tick=float(params.get("rate_per_tick", 2.0)),
        key_space=int(params.get("key_space", 256)),
        max_inflight=int(params.get("max_inflight", 64)),
        workers=int(params.get("workers", 1)),
    )
    summary = run_pdes(config)
    identical = 1
    if params.get("verify"):
        # Re-run in the opposite mode and compare canonical bytes.
        other_workers = 1 if config.workers > 1 else min(config.n_domains, 2)
        other = dataclasses.replace(config, workers=other_workers)
        identical = 1 if summary_bytes(run_pdes(other)) == summary_bytes(summary) else 0
    totals = summary["totals"]
    return {
        "ops": totals["completed_ok"],
        "ops_per_sec": totals["ops_per_sec"],
        "failed_ops": totals["completed_failed"],
        "remote_out": totals["remote_out"],
        "remote_in": totals["remote_in"],
        "shed": totals["shed"],
        "events_fired": totals["events_fired"],
        "in_flight_at_end": totals["in_flight_at_end"],
        "n_windows": summary["n_windows"],
        "p50_latency": summary["latency"]["p50"],
        "p99_latency": summary["latency"]["p99"],
        "remote_p99_latency": summary["remote_latency"]["p99"],
        "byte_identical": identical,
        "safe": totals["safe"],
    }


@register_runner("faultspace")
def run_faultspace(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One sampled fault injection, classified (the C3 campaign).

    Params: ``system`` (resilient|sharded), ``stratum`` (a stratum key
    or ``uniform``), ``protocol``, ``f``, ``width``, ``height``,
    ``duration``, ``warmup``, ``n_clients``, ``think_time``,
    ``rejuvenation``, ``rejuvenation_period``, ``n_shards``.  The
    concrete fault point is drawn inside the trial from its derived
    seed; see :mod:`repro.faultspace.classify`.
    """
    from repro.faultspace.classify import run_faultspace_trial

    return run_faultspace_trial(params, seed)


@register_runner("evolve")
def run_evolve(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One design-point evaluation for the evolutionary driver (P5).

    The genome genes arrive as params: ``protocol``, ``f``,
    ``batch_size``, ``batch_inflight``, ``window`` (population ordered-
    inflight cap), ``n_shards``, ``mesh`` (square chip geometry),
    ``rejuv_period`` (0 disables rejuvenation), ``lease``.  Evaluation
    knobs ride in ``base``: ``duration``, ``warmup``, ``n_clients``,
    ``rate_per_client``, ``key_space``, ``read_ratio``, ``queue_limit``.

    Reports the four Pareto objectives (see :mod:`repro.evolve.fitness`):
    committed throughput, p99 latency, survivable simultaneous Byzantine
    faults, and provisioned silicon cost in mega-gate-equivalents (the
    whole mesh's tiles plus the hardware USIG hybrids minbft replicas
    carry).  A genome whose shards do not fit the mesh is **infeasible**:
    the trial returns penalty metrics with ``feasible: 0`` rather than
    raising, so the executor's retry budget is never burned on points the
    search simply needs to steer away from.
    """
    from repro.bft.batching import BatchConfig
    from repro.bft.group import FAMILIES, protocol_config_for
    from repro.bft.leases import LeaseConfig
    from repro.core.rejuvenation import RejuvenationPolicy
    from repro.hybrids.complexity import (
        GE_HMAC_CORE,
        softcore_complexity,
        usig_complexity,
    )
    from repro.mesoscale import PopulationConfig
    from repro.metrics.stats import percentile
    from repro.shard import ShardConfig, ShardedSystem
    from repro.shard.placement import PlacementError
    from repro.workloads import kv_workload

    duration = float(params.get("duration", 90_000.0))
    warmup = float(params.get("warmup", 30_000.0))
    protocol = str(params.get("protocol", "minbft"))
    f = int(params.get("f", 1))
    n_shards = int(params.get("n_shards", 2))
    mesh = int(params.get("mesh", 8))
    rejuv_period = float(params.get("rejuv_period", 0) or 0)

    family = FAMILIES[protocol]
    n_replicas = n_shards * family.replicas_for(f)
    # Provisioned silicon: every fabricated tile carries a softcore and a
    # MAC engine whether or not a replica lands on it (you pay for the
    # chip you tape out, not the tiles you happen to use), plus the
    # per-replica ECC-protected USIG hybrid that minbft depends on.
    tile_ge = softcore_complexity().total_ge + GE_HMAC_CORE
    gate_ge = mesh * mesh * tile_ge
    if protocol == "minbft":
        gate_ge += n_replicas * usig_complexity("ecc").total_ge
    gate_mge = gate_ge / 1e6
    # The intrusion-resilience objective: simultaneous Byzantine replica
    # compromises survivable across the whole system.  Crash-only
    # families score zero — that is the axis that keeps cheap/fast CFT
    # configurations from dominating the front outright.
    survivable = n_shards * f if family.byzantine_safe else 0

    infeasible = {
        "ops": 0,
        "ops_per_sec": 0.0,
        "p99_latency_ms": 0.0,
        "mean_latency_ms": 0.0,
        "survivable_faults": survivable,
        "gate_mge": gate_mge,
        "replicas": n_replicas,
        "shed": 0,
        "failed_ops": 0,
        "safe": 0,
        "feasible": 0,
    }

    batch_size = int(params.get("batch_size", 1))
    batching = None
    if batch_size > 1:
        batching = BatchConfig(
            batch_size=batch_size,
            batch_delay=float(params.get("batch_delay", 100.0)),
            max_inflight=int(params.get("batch_inflight", 1)),
        )
    leases = None
    if params.get("lease"):
        leases = LeaseConfig(
            n_ranges=int(params.get("n_ranges", 64)),
            duration=float(params.get("lease_duration", 30_000.0)),
            renew_period=float(params.get("renew_period", 1_000.0)),
        )
    try:
        system = ShardedSystem(
            ShardConfig(
                seed=seed,
                n_shards=n_shards,
                protocol=protocol,
                f=f,
                width=mesh,
                height=mesh,
                enable_rejuvenation=rejuv_period > 0,
                rejuvenation=(
                    RejuvenationPolicy(
                        period=rejuv_period, diversify=True, relocate=False
                    )
                    if rejuv_period > 0
                    else None
                ),
                protocol_config=protocol_config_for(
                    protocol, batching=batching, leases=leases
                ),
            )
        )
    except (PlacementError, ValueError):
        return infeasible
    population = system.attach_population(
        "pop",
        PopulationConfig(
            n_clients=int(params.get("n_clients", 1000)),
            max_inflight=int(params.get("window", 32)),
            queue_limit=int(params.get("queue_limit", 4096)),
            workload=kv_workload(
                keys=int(params.get("key_space", 64)),
                read_ratio=float(params.get("read_ratio", 0.8)),
                rate_per_client=float(params.get("rate_per_client", 2e-4)),
            ),
        ),
    )
    system.start(warmup=warmup)
    start = system.sim.now
    system.run(duration)
    end = system.sim.now
    ops = population.completions_in(start, end)
    latencies = sorted(population.latencies_in(start, end))
    return {
        "ops": ops,
        "ops_per_sec": ops / (duration / 1000.0),
        "p99_latency_ms": percentile(latencies, 99.0) if latencies else 0.0,
        "mean_latency_ms": sum(latencies) / len(latencies) if latencies else 0.0,
        "survivable_faults": survivable,
        "gate_mge": gate_mge,
        "replicas": n_replicas,
        "shed": population.shed,
        "failed_ops": system.failed_operations(),
        "safe": 1 if system.is_safe else 0,
        "feasible": 1,
    }


@register_runner("evolve_selftest")
def run_evolve_selftest(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A microscopic analytic stand-in for the ``evolve`` runner.

    Same genome params and same metric keys, but the objectives come
    from a closed-form performance model (plus a small seeded noise
    multiplier) instead of a simulation — milliseconds per trial.  The
    landscape keeps the real trade-offs: crash-only protocols are fast
    and cheap but score zero survivable faults, sharding buys throughput
    sublinearly, batching trades tail latency for throughput, and bigger
    meshes relieve congestion while costing quadratically more silicon.
    Used by the engine's own tests and the CI evolve smoke so search
    behavior (not simulator behavior) is what gets exercised.
    """
    import math

    from repro.sim.rng import RngStream

    protocol = str(params.get("protocol", "minbft"))
    f = int(params.get("f", 1))
    batch_size = int(params.get("batch_size", 1))
    batch_inflight = int(params.get("batch_inflight", 1))
    window = int(params.get("window", 32))
    n_shards = int(params.get("n_shards", 2))
    mesh = int(params.get("mesh", 8))
    rejuv_period = float(params.get("rejuv_period", 0) or 0)
    lease = bool(params.get("lease", 0))

    replicas_for = {
        "pbft": 3 * f + 1,
        "minbft": 2 * f + 1,
        "cft": f + 1,
        "passive": f + 1,
    }
    byzantine_safe = protocol in ("pbft", "minbft")
    n_replicas = n_shards * replicas_for[protocol]
    if n_replicas > mesh * mesh:
        # The analytic analogue of a placement failure.
        feasible = False
    else:
        feasible = True

    base_rate = {"pbft": 8.0, "minbft": 14.0, "cft": 20.0, "passive": 22.0}
    batch_boost = 1.0 + 0.45 * (math.log2(batch_size) / 4.0) * (
        0.5 + 0.5 * math.log2(max(batch_inflight, 1) * 2) / 4.0
    )
    window_util = window / (window + 24.0)
    shard_scale = n_shards ** 0.85
    congestion = 1.0 - 0.4 * min(1.0, n_replicas / (mesh * mesh))
    rejuv_factor = 1.0 if rejuv_period == 0 else (
        0.93 if rejuv_period < 60_000 else 0.97
    )
    lease_boost = 1.18 if lease else 1.0

    stream = RngStream(seed, "campaign.evolve_selftest")
    noise_tp = 1.0 + 0.02 * stream.normal(0.0, 1.0)
    noise_lat = 1.0 + 0.02 * stream.normal(0.0, 1.0)

    ops_per_sec = (
        base_rate[protocol]
        * shard_scale
        * batch_boost
        * window_util
        * congestion
        * rejuv_factor
        * lease_boost
        * noise_tp
    )
    # Queue-bound tail latency: grows with the ordered window (more
    # queued ahead of you) and batch size, shrinks with leases; scaled
    # to the tens-of-sim-seconds overload regime the real runner sees.
    p99 = (
        (300.0 * replicas_for[protocol] / 4.0)
        * (1.0 + window / 16.0)
        * (1.0 + batch_size / 12.0)
        / congestion
        / lease_boost
        * noise_lat
    )
    tile_mge = 0.181
    gate_mge = mesh * mesh * tile_mge + (
        n_replicas * 0.0206 if protocol == "minbft" else 0.0
    )
    survivable = n_shards * f if byzantine_safe else 0
    if not feasible:
        ops_per_sec, p99 = 0.0, 0.0
    return {
        "ops": int(ops_per_sec),
        "ops_per_sec": ops_per_sec,
        "p99_latency_ms": p99,
        "mean_latency_ms": p99 / 3.0,
        "survivable_faults": survivable,
        "gate_mge": gate_mge,
        "replicas": n_replicas,
        "shed": 0,
        "failed_ops": 0,
        "safe": 1,
        "feasible": 1 if feasible else 0,
    }


@register_runner("selftest")
def run_selftest(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A microscopic trial for engine tests and the CI smoke campaign.

    Draws ``draws`` values from a seeded stream and reports their mean.
    Failure-injection knobs exercise the executor's robustness paths:
    ``fail`` raises an exception, ``sleep`` stalls (to trip per-trial
    timeouts), ``crash`` kills the worker process outright (to trip
    BrokenProcessPool recovery).
    """
    from repro.sim.rng import RngStream

    if params.get("sleep"):
        import time

        time.sleep(float(params["sleep"]))
    if params.get("crash"):
        import os

        os._exit(13)  # simulate a hard worker crash, not an exception
    if params.get("fail"):
        raise RuntimeError(f"selftest: injected failure for {params}")
    stream = RngStream(seed, "campaign.selftest")
    draws = int(params.get("draws", 100))
    values = [stream.random() for _ in range(draws)]
    return {
        "mean": sum(values) / len(values),
        "draws": draws,
        "first_draw": values[0],
    }
