"""Append-only JSONL result store — the resumability backbone.

Layout under ``<root>/<campaign name>/``:

* ``spec.json``    — the spec that owns this directory plus its hash;
  opening the store against a *different* spec raises
  :class:`SpecMismatchError` so incompatible results are never mixed.
* ``results.jsonl`` — one JSON record per trial *attempt*, appended and
  flushed as each attempt finishes.  A killed campaign therefore loses at
  most the in-flight trials; on re-run, trial IDs with an ``ok`` record
  are skipped.  A truncated final line (kill mid-write) is tolerated and
  ignored on load.
* ``summary.json`` / ``report.txt`` — written by :mod:`repro.campaign.report`.

Records are plain dicts with at minimum ``trial_id``, ``status``
(``ok`` | ``failed`` | ``timeout`` | ``crashed``), ``attempt``, ``seed``,
``seed_index``, ``params``, ``wall_time_s``, and (when ok) ``metrics``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set

from repro.campaign.spec import CampaignSpec, canonical_json

SPEC_FILE = "spec.json"
RESULTS_FILE = "results.jsonl"
SUMMARY_FILE = "summary.json"
REPORT_FILE = "report.txt"


class SpecMismatchError(RuntimeError):
    """The campaign directory belongs to a different spec."""


class ResultStore:
    """Resumable, append-only storage for one campaign's trial records."""

    def __init__(self, root: os.PathLike, spec: CampaignSpec) -> None:
        self.root = Path(root)
        self.spec = spec
        self.directory = self.root / spec.name
        self._handle = None
        # Successful trial IDs, built once by streaming the results file
        # at open() and maintained incrementally by append().  None until
        # open() runs (or a caller asks before opening, which falls back
        # to a one-off scan).
        self._completed: Optional[Set[str]] = None

    # ------------------------------------------------------------------
    @property
    def spec_path(self) -> Path:
        return self.directory / SPEC_FILE

    @property
    def results_path(self) -> Path:
        return self.directory / RESULTS_FILE

    @property
    def summary_path(self) -> Path:
        return self.directory / SUMMARY_FILE

    @property
    def report_path(self) -> Path:
        return self.directory / REPORT_FILE

    # ------------------------------------------------------------------
    def open(self, fresh: bool = False) -> "ResultStore":
        """Create or attach to the campaign directory.

        ``fresh=True`` discards any existing results for this campaign
        name (spec change or explicit restart); otherwise an existing
        directory must carry the same spec hash.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if fresh:
            for name in (RESULTS_FILE, SUMMARY_FILE, REPORT_FILE, SPEC_FILE):
                path = self.directory / name
                if path.exists():
                    path.unlink()
            self._completed = set()
        if self.spec_path.exists():
            existing = json.loads(self.spec_path.read_text(encoding="utf-8"))
            if existing.get("spec_hash") != self.spec.spec_hash():
                raise SpecMismatchError(
                    f"campaign directory {self.directory} was created by spec "
                    f"{existing.get('spec_hash')}, current spec is "
                    f"{self.spec.spec_hash()}; use fresh=True (--fresh) to restart"
                )
        else:
            payload = dict(self.spec.to_dict(), spec_hash=self.spec.spec_hash())
            self.spec_path.write_text(
                json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
            )
        # Streaming resume: build the seen-trial-id set one line at a
        # time (parse, extract, discard) rather than materializing the
        # parsed records, so a multi-generation store with 10^5+ attempt
        # records resumes in O(1) extra memory beyond the ID set itself
        # — and later completed_ids() calls never re-read the file.
        if self._completed is None:
            self._completed = self._scan_completed()
        return self

    def close(self) -> None:
        """Close the append handle (records stay on disk)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultStore":
        return self.open()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> None:
        """Append one attempt record and flush it to disk immediately."""
        if self._handle is None:
            self._handle = open(self.results_path, "a", encoding="utf-8")
        self._handle.write(canonical_json(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        if self._completed is not None and record.get("status") == "ok":
            self._completed.add(record["trial_id"])

    def records(self) -> Iterator[Dict[str, Any]]:
        """All attempt records, oldest first; truncated tails are skipped."""
        if not self.results_path.exists():
            return
        with open(self.results_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # A kill mid-append leaves a partial last line; that
                    # attempt is simply lost and will be re-run.
                    continue

    def _scan_completed(self) -> Set[str]:
        """One streaming pass over the results file for successful IDs."""
        seen: Set[str] = set()
        if not self.results_path.exists():
            return seen
        with open(self.results_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated tail from a kill mid-append
                if record.get("status") == "ok":
                    seen.add(record["trial_id"])
        return seen

    def completed_ids(self) -> Set[str]:
        """Trial IDs that already have a successful record.

        Served from the set open() built (and append() maintains), so
        repeated calls — the sequential and evolutionary drivers ask
        once per round/generation — cost O(completed) for the returned
        copy, not a re-parse of the whole results file.
        """
        if self._completed is not None:
            return set(self._completed)
        return self._scan_completed()

    def ok_records(self) -> List[Dict[str, Any]]:
        """The first successful record per trial, ordered by trial ID.

        First-wins keeps aggregation deterministic even if a resumed run
        somehow duplicated a trial.
        """
        seen: Dict[str, Dict[str, Any]] = {}
        for record in self.records():
            if record.get("status") == "ok" and record["trial_id"] not in seen:
                seen[record["trial_id"]] = record
        return [seen[tid] for tid in sorted(seen)]

    def attempt_count(self) -> int:
        """Total attempt records on disk (for resume-semantics assertions)."""
        return sum(1 for _ in self.records())
